// Package churn evolves a generated world through deterministic epochs
// of route dynamics: bilateral session flaps, route-server membership
// joins and leaves, export/import filter edits, and prefix-origin moves
// — the perturbations PARI-style studies show degrade snapshot-based
// multilateral-peering inference. Each epoch is sampled reproducibly
// from the current world state, applied incrementally through
// propagate.Engine.Apply, and diffed into a true announce+withdraw
// BGP4MP stream by the collector's UpdateStream, giving the windowed
// passive pipeline (core.RunPassiveWindows) a dynamic trace with exact
// per-epoch ground truth alongside it.
package churn

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"time"

	"mlpeering/internal/bgp"
	"mlpeering/internal/collector"
	"mlpeering/internal/ixp"
	"mlpeering/internal/propagate"
	"mlpeering/internal/topology"
)

// Config parameterizes the epoch schedule.
type Config struct {
	// Seed drives all sampling; equal seeds over equal worlds give
	// byte-identical schedules and update streams.
	Seed int64
	// Epochs is the number of mutation rounds.
	Epochs int
	// Interval is the wall-clock spacing between epochs (and the
	// natural inference window size). Defaults to 10 minutes.
	Interval time.Duration

	// Per-epoch event counts.
	PeerFlaps         int // bilateral sessions torn down or (re)established
	MembershipChanges int // route-server joins/leaves
	FilterEdits       int // export-policy edits (with re-encoded communities)
	PrefixMoves       int // prefix-origin re-homings
}

// DefaultConfig returns a moderate churn profile.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:              seed,
		Epochs:            6,
		Interval:          10 * time.Minute,
		PeerFlaps:         4,
		MembershipChanges: 3,
		FilterEdits:       4,
		PrefixMoves:       2,
	}
}

// departed remembers a member that left a route server so a later epoch
// can re-join it with its original policy (the flap pattern remote
// peering resellers exhibit).
type departed struct {
	ixp    string
	member bgp.ASN
	export ixp.ExportFilter
	imp    ixp.ExportFilter
	comms  bgp.Communities
}

// downLink remembers a torn-down bilateral session (and its IXP
// attribution) so a later epoch can restore it.
type downLink struct {
	key  topology.LinkKey
	ixps []string
}

// Runner generates and applies the epoch schedule over one world.
type Runner struct {
	cfg    Config
	engine *propagate.Engine
	topo   *topology.Topology

	epoch     int
	departed  []departed
	downLinks []downLink // bilateral sessions currently torn down
}

// NewRunner prepares a churn runner over the engine's world.
func NewRunner(engine *propagate.Engine, cfg Config) *Runner {
	if cfg.Interval <= 0 {
		cfg.Interval = 10 * time.Minute
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	return &Runner{cfg: cfg, engine: engine, topo: engine.Topology()}
}

// Config returns the runner's (normalized) configuration.
func (r *Runner) Config() Config { return r.cfg }

// NextDelta samples the next epoch's mutations from the current world
// state. The sampling is a pure function of (seed, epoch, world state),
// so identical runs produce identical schedules.
func (r *Runner) NextDelta() *propagate.Delta {
	rng := rand.New(rand.NewSource(r.cfg.Seed + int64(r.epoch)*7919))
	d := &propagate.Delta{Epoch: r.epoch}
	r.epoch++

	r.samplePeerFlaps(rng, d)
	r.sampleMemberships(rng, d)
	r.sampleFilterEdits(rng, d)
	r.samplePrefixMoves(rng, d)
	return d
}

// samplePeerFlaps alternates tearing down existing bilateral sessions
// and bringing previously flapped ones back up (or lighting new ones
// between IXP co-members). A session torn down in this epoch is never
// restored in the same delta: flaps span at least one inference window,
// so the withdraw and the re-announce land in different windows.
func (r *Runner) samplePeerFlaps(rng *rand.Rand, d *propagate.Delta) {
	for i := 0; i < r.cfg.PeerFlaps; i++ {
		up := i%2 == 1
		if up {
			// Restore a session torn down in an earlier epoch.
			var eligible []int
			for j, dl := range r.downLinks {
				if !linkScheduled(d, dl.key) {
					eligible = append(eligible, j)
				}
			}
			if len(eligible) > 0 {
				j := eligible[rng.Intn(len(eligible))]
				dl := r.downLinks[j]
				r.downLinks = append(r.downLinks[:j], r.downLinks[j+1:]...)
				d.Peers = append(d.Peers, propagate.PeerOp{A: dl.key.A, B: dl.key.B, Add: true, IXPs: dl.ixps})
				continue
			}
			// Nothing to restore: light a new session between random
			// co-members of a random IXP with no existing relationship.
			if op, ok := r.sampleNewSession(rng); ok {
				d.Peers = append(d.Peers, op)
			}
			continue
		}
		links := r.topo.BilateralLinks()
		if len(links) == 0 {
			continue
		}
		l := links[rng.Intn(len(links))]
		key := topology.MakeLinkKey(l.A, l.B)
		if linkScheduled(d, key) {
			continue
		}
		// Capture the IXP attribution before RemovePeerLink drops it.
		var ixps []string
		if names, ok := r.topo.BilateralIXP[key]; ok {
			ixps = append([]string(nil), names...)
		}
		r.downLinks = append(r.downLinks, downLink{key: key, ixps: ixps})
		d.Peers = append(d.Peers, propagate.PeerOp{A: l.A, B: l.B, Add: false})
	}
}

// linkScheduled reports whether the link already has a peer op in this
// delta.
func linkScheduled(d *propagate.Delta, key topology.LinkKey) bool {
	for _, op := range d.Peers {
		if topology.MakeLinkKey(op.A, op.B) == key {
			return true
		}
	}
	return false
}

// sampleNewSession picks two co-members of a random IXP with no
// existing relationship.
func (r *Runner) sampleNewSession(rng *rand.Rand) (propagate.PeerOp, bool) {
	if len(r.topo.IXPs) == 0 {
		return propagate.PeerOp{}, false
	}
	info := r.topo.IXPs[rng.Intn(len(r.topo.IXPs))]
	members := info.SortedMembers()
	if len(members) < 2 {
		return propagate.PeerOp{}, false
	}
	for tries := 0; tries < 8; tries++ {
		a := members[rng.Intn(len(members))]
		b := members[rng.Intn(len(members))]
		if a == b {
			continue
		}
		if _, related := r.topo.RelationshipOf(a, b); related {
			continue
		}
		return propagate.PeerOp{A: a, B: b, Add: true}, true
	}
	return propagate.PeerOp{}, false
}

// sampleMemberships alternates route-server leaves and (re)joins.
func (r *Runner) sampleMemberships(rng *rand.Rand, d *propagate.Delta) {
	for i := 0; i < r.cfg.MembershipChanges; i++ {
		join := i%2 == 1
		if join && len(r.departed) > 0 {
			j := rng.Intn(len(r.departed))
			dep := r.departed[j]
			if !memberScheduled(d, dep.ixp, dep.member) {
				r.departed = append(r.departed[:j], r.departed[j+1:]...)
				d.Members = append(d.Members, propagate.MemberOp{
					IXP: dep.ixp, Member: dep.member, Join: true,
					Export: dep.export, Import: dep.imp, Comms: dep.comms,
				})
			}
			continue
		}
		if join {
			if op, ok := r.sampleFreshJoin(rng, d); ok {
				d.Members = append(d.Members, op)
			}
			continue
		}
		// Leave: a random RS member of a random IXP that can spare one.
		if op, ok := r.sampleLeave(rng, d); ok {
			d.Members = append(d.Members, op)
		}
	}
}

func (r *Runner) sampleLeave(rng *rand.Rand, d *propagate.Delta) (propagate.MemberOp, bool) {
	for tries := 0; tries < 8; tries++ {
		info := r.topo.IXPs[rng.Intn(len(r.topo.IXPs))]
		members := info.SortedRSMembers()
		if len(members) <= 5 {
			continue
		}
		m := members[rng.Intn(len(members))]
		if memberScheduled(d, info.Name, m) {
			continue
		}
		export, ok1 := r.topo.ExportFilter(info.Name, m)
		imp, ok2 := r.topo.ImportFilter(info.Name, m)
		if !ok1 || !ok2 {
			continue
		}
		comms, _ := r.topo.MemberCommunities(info.Name, m)
		r.departed = append(r.departed, departed{
			ixp: info.Name, member: m, export: export, imp: imp, comms: comms,
		})
		return propagate.MemberOp{IXP: info.Name, Member: m, Join: false}, true
	}
	return propagate.MemberOp{}, false
}

// sampleFreshJoin connects an IXP member that never used the route
// server, with an open policy (the common default for new RS sessions).
func (r *Runner) sampleFreshJoin(rng *rand.Rand, d *propagate.Delta) (propagate.MemberOp, bool) {
	for tries := 0; tries < 8; tries++ {
		info := r.topo.IXPs[rng.Intn(len(r.topo.IXPs))]
		var candidates []bgp.ASN
		for _, m := range info.SortedMembers() {
			if !info.IsRSMember(m) {
				candidates = append(candidates, m)
			}
		}
		if len(candidates) == 0 {
			continue
		}
		m := candidates[rng.Intn(len(candidates))]
		if memberScheduled(d, info.Name, m) {
			continue
		}
		open := ixp.OpenFilter()
		comms, err := r.encodeComms(info, m, open)
		if err != nil {
			continue
		}
		return propagate.MemberOp{
			IXP: info.Name, Member: m, Join: true,
			Export: open, Import: ixp.OpenFilter(), Comms: comms,
		}, true
	}
	return propagate.MemberOp{}, false
}

// sampleFilterEdits mutates export policies: mostly adding excludes
// (the §5.5 repeller behaviour spreading), sometimes retracting one.
func (r *Runner) sampleFilterEdits(rng *rand.Rand, d *propagate.Delta) {
	for i := 0; i < r.cfg.FilterEdits; i++ {
		op, ok := r.sampleFilterEdit(rng, d)
		if ok {
			d.Filters = append(d.Filters, op)
		}
	}
}

func (r *Runner) sampleFilterEdit(rng *rand.Rand, d *propagate.Delta) (propagate.FilterOp, bool) {
	for tries := 0; tries < 8; tries++ {
		info := r.topo.IXPs[rng.Intn(len(r.topo.IXPs))]
		members := info.SortedRSMembers()
		if len(members) < 3 {
			continue
		}
		m := members[rng.Intn(len(members))]
		if memberScheduled(d, info.Name, m) {
			continue
		}
		export, ok := r.topo.ExportFilter(info.Name, m)
		if !ok {
			continue
		}
		imp, _ := r.topo.ImportFilter(info.Name, m)
		newExport, changed := mutateFilter(rng, export, imp, m, members)
		if !changed {
			continue
		}
		comms, err := r.encodeComms(info, m, newExport)
		if err != nil {
			continue
		}
		return propagate.FilterOp{
			IXP: info.Name, Member: m,
			Export: newExport, Import: imp, Comms: comms,
		}, true
	}
	return propagate.FilterOp{}, false
}

// mutateFilter toggles one peer in the export policy, constrained so
// the §4.4 invariant (import never more restrictive than export) holds
// with the member's import unchanged: widening the export toward a peer
// is only done when the import already accepts that peer.
func mutateFilter(rng *rand.Rand, export, imp ixp.ExportFilter, self bgp.ASN, members []bgp.ASN) (ixp.ExportFilter, bool) {
	peers := export.PeerList()
	widen := rng.Float64() < 0.4 && len(peers) > 0
	if export.Mode == ixp.ModeAllExcept {
		if widen {
			// Drop an exclude the import already accepts.
			for _, p := range shuffled(rng, peers) {
				if imp.Allows(p) {
					return ixp.NewExportFilter(ixp.ModeAllExcept, without(peers, p)...), true
				}
			}
			return export, false
		}
		// Add an exclude.
		for tries := 0; tries < 6; tries++ {
			p := members[rng.Intn(len(members))]
			if p == self || export.Peers[p] {
				continue
			}
			return ixp.NewExportFilter(ixp.ModeAllExcept, append(append([]bgp.ASN(nil), peers...), p)...), true
		}
		return export, false
	}
	// NONE+INCLUDE: narrowing drops an include (always invariant-safe);
	// widening adds one the import already accepts.
	if !widen && len(peers) > 1 {
		p := peers[rng.Intn(len(peers))]
		return ixp.NewExportFilter(ixp.ModeNoneExcept, without(peers, p)...), true
	}
	for tries := 0; tries < 6; tries++ {
		p := members[rng.Intn(len(members))]
		if p == self || export.Peers[p] || !imp.Allows(p) {
			continue
		}
		return ixp.NewExportFilter(ixp.ModeNoneExcept, append(append([]bgp.ASN(nil), peers...), p)...), true
	}
	return export, false
}

// samplePrefixMoves re-homes prefixes between random ASes.
func (r *Runner) samplePrefixMoves(rng *rand.Rand, d *propagate.Delta) {
	order := r.topo.Order
	for i := 0; i < r.cfg.PrefixMoves; i++ {
		for tries := 0; tries < 8; tries++ {
			from := order[rng.Intn(len(order))]
			src := r.topo.ASes[from]
			if len(src.Prefixes) == 0 {
				continue
			}
			p := src.Prefixes[rng.Intn(len(src.Prefixes))]
			// Skip prefixes already scheduled this epoch.
			dup := false
			for _, op := range d.Prefixes {
				if op.Prefix == p {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			to := order[rng.Intn(len(order))]
			if to == from {
				continue
			}
			d.Prefixes = append(d.Prefixes, propagate.PrefixOp{Prefix: p, From: from, To: to})
			break
		}
	}
}

// encodeComms encodes a filter into the member's on-the-wire community
// set under the IXP's scheme, honouring the operator's omitted-ALL
// habit like the generator does.
func (r *Runner) encodeComms(info *ixp.Info, m bgp.ASN, f ixp.ExportFilter) (bgp.Communities, error) {
	cs, err := f.Communities(&info.Scheme)
	if err != nil {
		return nil, err
	}
	if as := r.topo.ASes[m]; as != nil && as.OmitsDefaultALL && f.Mode == ixp.ModeAllExcept {
		cs = ixp.OmitDefault(cs, info.Scheme)
	}
	return cs, nil
}

// memberScheduled reports whether (ixp, member) already has a
// membership or filter op in this delta.
func memberScheduled(d *propagate.Delta, ixpName string, m bgp.ASN) bool {
	for _, op := range d.Members {
		if op.IXP == ixpName && op.Member == m {
			return true
		}
	}
	for _, op := range d.Filters {
		if op.IXP == ixpName && op.Member == m {
			return true
		}
	}
	return false
}

func without(s []bgp.ASN, x bgp.ASN) []bgp.ASN {
	out := make([]bgp.ASN, 0, len(s))
	for _, v := range s {
		if v != x {
			out = append(out, v)
		}
	}
	return out
}

func shuffled(rng *rand.Rand, s []bgp.ASN) []bgp.ASN {
	out := append([]bgp.ASN(nil), s...)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// EpochStats summarizes one applied epoch.
type EpochStats struct {
	Epoch      int
	Ops        int
	DirtyDests int
	Announced  int // prefix announcements emitted
	Withdrawn  int // prefix withdrawals emitted
	TruthLinks int // ground-truth reciprocal ML links after the epoch
}

// Trace is the outcome of a full churn run: per-epoch stats and the
// ground-truth reciprocal mesh after each epoch, aligned with the
// inference windows of the update stream written alongside.
type Trace struct {
	Start    time.Time
	Interval time.Duration
	Epochs   []EpochStats
	// Truth[k] is the reciprocal ground-truth ML mesh after epoch k.
	Truth []map[topology.LinkKey]bool
}

// Run generates, applies and streams all configured epochs: for each
// epoch the delta is applied incrementally through Engine.Apply and the
// dirty destinations are diffed into announce/withdraw messages on w
// (an MRT BGP4MP stream). The collector col must observe the runner's
// engine.
func (r *Runner) Run(w io.Writer, col *collector.Collector, start time.Time) (*Trace, error) {
	if col.Engine() != r.engine {
		return nil, fmt.Errorf("churn: collector observes a different engine")
	}
	stream := collector.NewUpdateStream(col)
	tr := &Trace{Start: start, Interval: r.cfg.Interval}
	for k := 0; k < r.cfg.Epochs; k++ {
		d := r.NextDelta()
		dirty, err := r.engine.Apply(d)
		if err != nil {
			return nil, fmt.Errorf("churn: epoch %d: %w", k, err)
		}
		ann, wd, err := stream.WriteEpoch(w, start.Add(time.Duration(k)*r.cfg.Interval), r.cfg.Interval, dirty)
		if err != nil {
			return nil, fmt.Errorf("churn: epoch %d stream: %w", k, err)
		}
		truth := r.topo.AllGroundTruthReciprocalLinks()
		tr.Epochs = append(tr.Epochs, EpochStats{
			Epoch: k, Ops: d.Ops(), DirtyDests: len(dirty),
			Announced: ann, Withdrawn: wd, TruthLinks: len(truth),
		})
		tr.Truth = append(tr.Truth, truth)
	}
	return tr, nil
}

// DescribeDelta renders a delta as a canonical one-line schedule entry,
// used by the determinism and golden tests to pin the epoch schedule.
func DescribeDelta(d *propagate.Delta) string {
	var b strings.Builder
	fmt.Fprintf(&b, "epoch %d:", d.Epoch)
	for _, op := range d.Peers {
		verb := "down"
		if op.Add {
			verb = "up"
		}
		fmt.Fprintf(&b, " peer-%s %s--%s;", verb, op.A, op.B)
	}
	for _, op := range d.Members {
		verb := "leave"
		if op.Join {
			verb = "join"
		}
		fmt.Fprintf(&b, " %s %s@%s;", verb, op.Member, op.IXP)
	}
	for _, op := range d.Filters {
		peers := op.Export.PeerList()
		strs := make([]string, len(peers))
		for i, p := range peers {
			strs[i] = p.String()
		}
		sort.Strings(strs)
		fmt.Fprintf(&b, " filter %s@%s=%s[%s];", op.Member, op.IXP, op.Export.Mode, strings.Join(strs, ","))
	}
	for _, op := range d.Prefixes {
		fmt.Fprintf(&b, " move %s %s->%s;", op.Prefix, op.From, op.To)
	}
	return b.String()
}
