// Package pipeline assembles the full measurement world end to end:
// synthetic topology → propagation → collector MRT archives, route
// server RIBs, looking glasses served over real HTTP, IRR and PeeringDB
// registries — and then drives the paper's inference algorithm over
// those data sources exactly as an operator would over the real ones.
package pipeline

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"mlpeering/internal/bgp"
	"mlpeering/internal/collector"
	"mlpeering/internal/core"
	"mlpeering/internal/geo"
	"mlpeering/internal/irr"
	"mlpeering/internal/lg"
	"mlpeering/internal/mrt"
	"mlpeering/internal/peeringdb"
	"mlpeering/internal/propagate"
	"mlpeering/internal/topology"
)

// World bundles every substrate for one generated Internet.
type World struct {
	Topo   *topology.Topology
	Engine *propagate.Engine
	RSRIBs map[string]*propagate.RSRIB

	IRR *irr.Registry
	Geo *geo.Database
	PDB *peeringdb.Registry

	// Dumps and Updates are the collector archives, parsed back from
	// MRT bytes so the full codec path is exercised.
	Dumps   []*mrt.Dump
	Updates []*mrt.BGP4MPMessage

	lgServer *lg.Server
	httpSrv  *http.Server
	baseURL  string

	// Owners indexes prefix origination ground truth (used by the AS
	// looking glasses, which know their own routing tables).
	Owners map[bgp.Prefix]bgp.ASN

	cfg topology.Config
}

// Timestamp is the nominal collection time: the paper's 1 May 2013.
var Timestamp = time.Date(2013, 5, 1, 0, 0, 0, 0, time.UTC)

// stageGroup runs independent build stages concurrently and keeps the
// first error.
type stageGroup struct {
	wg sync.WaitGroup
	mu sync.Mutex
	//mlplint:guardedby mu
	err error
}

func (g *stageGroup) Go(name string, f func() error) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		if err := f(); err != nil {
			g.mu.Lock()
			if g.err == nil {
				g.err = fmt.Errorf("pipeline: %s stage: %w", name, err)
			}
			g.mu.Unlock()
		}
	}()
}

func (g *stageGroup) Wait() error {
	g.wg.Wait()
	//mlplint:guardedby wg.Wait happens-after every writer's Done, so the read needs no lock
	return g.err
}

// BuildScenarioWorld builds the named world scenario (see
// topology.ScenarioNames) over cfg.
func BuildScenarioWorld(scenario string, cfg topology.Config) (*World, error) {
	cfg.Scenario = scenario
	return BuildWorld(cfg)
}

// BuildWorld generates and wires a world from the topology config,
// running the scenario cfg.Scenario names (baseline when empty).
//
// Construction is staged: generation and the propagation engine come
// first, then every independent substrate — route-server RIBs, the
// collector RIB archive, the update trace, the IRR, PeeringDB, the
// geolocation database — is built concurrently, each stage driving the
// engine's worker pool for the trees it needs.
func BuildWorld(cfg topology.Config) (*World, error) {
	if cfg.Scenario == "" {
		cfg.Scenario = "baseline" // normalize once; Scenario() reports it
	}
	topo, err := topology.Generate(cfg)
	if err != nil {
		return nil, err
	}
	w := &World{
		Topo:   topo,
		Engine: propagate.NewEngine(topo, 0),
		cfg:    cfg,
	}

	var g stageGroup
	g.Go("rsribs", func() error {
		w.RSRIBs = propagate.BuildRSRIBs(w.Engine, 4)
		return nil
	})
	g.Go("rib-archive", func() error {
		col := collector.New("rrc-synth", w.Engine, nil, 4)
		var ribBuf bytes.Buffer
		if err := col.WriteRIB(&ribBuf, Timestamp); err != nil {
			return err
		}
		dump, err := mrt.ReadDump(&ribBuf)
		if err != nil {
			return err
		}
		w.Dumps = []*mrt.Dump{dump}
		return nil
	})
	g.Go("update-trace", func() error {
		col := collector.New("rrc-synth", w.Engine, nil, 4)
		updOpts := collector.UpdateOptions{
			Churn:          200,
			TransientPaths: 12,
			PoisonedPaths:  8,
			BogonPaths:     6,
			Seed:           cfg.Seed + 2,
		}
		var updBuf bytes.Buffer
		if err := col.WriteUpdates(&updBuf, Timestamp.Add(time.Hour), updOpts); err != nil {
			return err
		}
		var err error
		w.Updates, err = mrt.ReadUpdates(&updBuf)
		return err
	})
	g.Go("irr", func() error {
		w.IRR = irr.Build(topo, cfg.IRRRegistrationFrac, cfg.Seed+1)
		return nil
	})
	g.Go("registries", func() error {
		w.Geo = geo.New(topo.PrefixRegions)
		w.Owners = topo.PrefixOwners()
		w.PDB = buildPDB(topo)
		return nil
	})
	if err := g.Wait(); err != nil {
		return nil, err
	}

	w.buildLGServer()
	return w, nil
}

// Scenario returns the name of the scenario this world was built from.
func (w *World) Scenario() string { return w.cfg.Scenario }

func buildPDB(topo *topology.Topology) *peeringdb.Registry {
	reg := peeringdb.NewRegistry()
	ixpsOf := make(map[bgp.ASN][]string)
	for _, info := range topo.IXPs {
		for _, m := range info.Members {
			ixpsOf[m] = append(ixpsOf[m], info.Name)
		}
	}
	lgHosts := make(map[bgp.ASN]bool)
	for _, l := range topo.ValidationLGs {
		lgHosts[l.ASN] = true
	}
	for _, asn := range topo.Order {
		as := topo.ASes[asn]
		if !as.Registered {
			continue
		}
		rec := &peeringdb.Record{
			ASN:    asn,
			Name:   as.Name,
			Policy: as.Policy,
			Scope:  as.Scope,
			IXPs:   ixpsOf[asn],
		}
		if lgHosts[asn] {
			rec.LGURLs = []string{"/as/" + asn.String()}
		}
		reg.Put(rec)
	}
	return reg
}

// buildLGServer mounts every looking glass:
//
//	/rs/<ixp-name>   IXP route server LGs (HasLG IXPs)
//	/as/<asn>        member and validation LGs
func (w *World) buildLGServer() {
	srv := lg.NewServer()
	mountedAS := make(map[bgp.ASN]bool)
	mountAS := func(host topology.LGHost) {
		if mountedAS[host.ASN] {
			return
		}
		mountedAS[host.ASN] = true
		srv.Mount("as/"+host.ASN.String(), lg.NewASBackend(w.Engine, host.ASN, w.Owners, host.AllPaths))
	}
	for _, info := range w.Topo.IXPs {
		if info.HasLG {
			var hidden []bgp.ASN
			if info.Name == "DTEL-IX" {
				// The paper's footnote 3: DTEL-IX's LG refuses queries
				// for 5 members (of 71) who do not disclose
				// connectivity; scale the count with the member list.
				members := info.SortedRSMembers()
				n := len(members) / 14
				if n > 5 {
					n = 5
				}
				hidden = members[:n]
			}
			srv.Mount("rs/"+info.Name, lg.NewRSBackend(w.RSRIBs[info.Name], hidden))
		}
		for _, h := range w.Topo.MemberLGs[info.Name] {
			mountAS(h)
		}
	}
	for _, h := range w.Topo.ValidationLGs {
		mountAS(h)
	}
	w.lgServer = srv
}

// StartLGs serves all looking glasses on a loopback HTTP listener.
func (w *World) StartLGs() error {
	if w.httpSrv != nil {
		return nil
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("pipeline: starting LG server: %w", err)
	}
	w.httpSrv = &http.Server{Handler: w.lgServer.Handler()}
	w.baseURL = "http://" + ln.Addr().String()
	go func() { _ = w.httpSrv.Serve(ln) }()
	return nil
}

// BaseURL returns the LG server's base URL (after StartLGs).
func (w *World) BaseURL() string { return w.baseURL }

// LGHandler exposes the looking-glass HTTP handler for callers that
// manage their own listener (cmd/lgserve).
func (w *World) LGHandler() http.Handler { return w.lgServer.Handler() }

// Close shuts down the LG server.
func (w *World) Close() error {
	if w.httpSrv == nil {
		return nil
	}
	err := w.httpSrv.Close()
	w.httpSrv = nil
	return err
}

// lgClient builds a client with the standard (disabled-in-tests) rate
// limit.
func (w *World) lgClient(path string, limiter *lg.RateLimiter) *lg.Client {
	return &lg.Client{BaseURL: w.baseURL + "/" + path, Limiter: limiter}
}

// LGEndpoints assembles the per-IXP looking-glass clients for the
// active survey. interval paces queries (0 disables rate limiting).
func (w *World) LGEndpoints(interval time.Duration) map[string]core.IXPLGs {
	out := make(map[string]core.IXPLGs, len(w.Topo.IXPs))
	for _, info := range w.Topo.IXPs {
		var e core.IXPLGs
		if info.HasLG {
			e.RS = w.lgClient("rs/"+info.Name, lg.NewRateLimiter(interval))
		}
		for _, h := range w.Topo.MemberLGs[info.Name] {
			e.Members = append(e.Members, core.MemberLG{
				Client: w.lgClient("as/"+h.ASN.String(), lg.NewRateLimiter(interval)),
				Host:   h.ASN,
			})
		}
		out[info.Name] = e
	}
	return out
}

// ValidationLGs assembles the validation clients (§5.1's 70 LGs).
func (w *World) ValidationLGs(interval time.Duration) []core.ValidationLG {
	var out []core.ValidationLG
	for _, h := range w.Topo.ValidationLGs {
		out = append(out, core.ValidationLG{
			Client:   w.lgClient("as/"+h.ASN.String(), lg.NewRateLimiter(interval)),
			Host:     h.ASN,
			AllPaths: h.AllPaths,
		})
	}
	return out
}

// Dictionary builds the inference dictionary from the world's public
// data sources (IXP documentation plus the IRR).
func (w *World) Dictionary() (*core.Dictionary, error) {
	var sites []core.WebsiteData
	for _, info := range w.Topo.IXPs {
		site := core.WebsiteData{
			Name:                info.Name,
			Scheme:              info.Scheme,
			PublishesMemberList: info.PublishesMemberList,
		}
		if info.PublishesMemberList {
			site.PublishedRSMembers = info.SortedRSMembers()
		}
		sites = append(sites, site)
	}
	return core.BuildDictionary(sites, w.IRR)
}

// Run is the complete inference outcome over one world.
type Run struct {
	Dict    *core.Dictionary
	Passive *core.PassiveResult
	Active  *core.ActiveResult
	Merged  *core.Observations
	Result  *core.Result
}

// RunInference executes the full pipeline: passive mining of the MRT
// archives, the active LG survey, merge, and link inference.
func (w *World) RunInference(ctx context.Context, activeCfg core.ActiveConfig) (*Run, error) {
	if err := w.StartLGs(); err != nil {
		return nil, err
	}
	dict, err := w.Dictionary()
	if err != nil {
		return nil, err
	}
	passive, err := core.RunPassive(w.Dumps, w.Updates, dict)
	if err != nil {
		return nil, err
	}
	hints := make(map[bgp.ASN][]bgp.Prefix)
	for p, origin := range passive.PrefixOrigins {
		hints[origin] = append(hints[origin], p)
	}
	active, err := core.RunActive(ctx, dict, w.LGEndpoints(0), passive.Obs, hints, activeCfg)
	if err != nil {
		return nil, err
	}
	merged := core.NewObservations()
	merged.Merge(passive.Obs)
	merged.Merge(active.Obs)
	return &Run{
		Dict:    dict,
		Passive: passive,
		Active:  active,
		Merged:  merged,
		Result:  core.InferLinks(dict, merged),
	}, nil
}

// Validator builds the §5.1 validation engine over this world.
func (w *World) Validator(run *Run, interval time.Duration) *core.Validator {
	prefixes := make(map[bgp.ASN][]bgp.Prefix)
	for p, origin := range run.Passive.PrefixOrigins {
		prefixes[origin] = append(prefixes[origin], p)
	}
	return &core.Validator{
		LGs:              w.ValidationLGs(interval),
		Geo:              w.Geo,
		PrefixesByOrigin: prefixes,
		Rels:             run.Passive.Rels,
		MaxPrefixes:      6,
	}
}
