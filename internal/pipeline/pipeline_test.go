package pipeline

import (
	"context"
	"testing"

	"mlpeering/internal/core"
	"mlpeering/internal/topology"
)

// buildRun generates a world and runs the full pipeline once per test
// binary (it is the expensive fixture every check shares).
var sharedRun *Run
var sharedWorld *World

func fixture(t *testing.T) (*World, *Run) {
	t.Helper()
	if sharedRun != nil {
		return sharedWorld, sharedRun
	}
	w, err := BuildWorld(topology.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	run, err := w.RunInference(context.Background(), core.DefaultActiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	sharedWorld, sharedRun = w, run
	return w, run
}

func TestPipelineProducesLinks(t *testing.T) {
	w, run := fixture(t)
	if run.Result.TotalLinks() == 0 {
		t.Fatal("no links inferred")
	}
	// Every IXP with an LG must reach (nearly) full coverage:
	// pasv + active ≈ RS member count, as in Table 2.
	for _, info := range w.Topo.IXPs {
		x := run.Result.PerIXP[info.Name]
		if x == nil {
			t.Fatalf("%s missing from result", info.Name)
		}
		covered := len(x.Filters)
		if info.HasLG {
			min := len(info.RSMembers) * 8 / 10
			if covered < min {
				t.Errorf("%s: covered %d of %d RS members despite own LG", info.Name, covered, len(info.RSMembers))
			}
		}
		if covered > 0 && len(x.Links) == 0 && covered > 5 {
			t.Errorf("%s: %d covered members but no links", info.Name, covered)
		}
	}
}

func TestInferredLinksAreSoundAgainstGroundTruth(t *testing.T) {
	w, run := fixture(t)
	// Reciprocity is conservative: false positives can only arise from
	// rare passive setter misattribution (case 2 of §4.2 with an
	// incomplete member list), so precision must stay above 99%.
	badLinks := 0
	total := 0
	for _, info := range w.Topo.IXPs {
		truth := w.Topo.GroundTruthMLPLinks(info.Name)
		x := run.Result.PerIXP[info.Name]
		for link := range x.Links {
			total++
			if !truth[link] {
				badLinks++
			}
		}
	}
	if total == 0 {
		t.Fatal("nothing to check")
	}
	if frac := float64(badLinks) / float64(total); frac > 0.01 {
		t.Fatalf("%d of %d inferred links are false positives (%.4f)", badLinks, total, frac)
	}
}

func TestRecallAgainstReciprocalTruth(t *testing.T) {
	w, run := fixture(t)
	// For IXPs with full LG coverage, recall against the reciprocal
	// ground truth (what the method can see at best) should be high.
	for _, info := range w.Topo.IXPs {
		if !info.HasLG {
			continue
		}
		truth := w.Topo.GroundTruthReciprocalLinks(info.Name)
		x := run.Result.PerIXP[info.Name]
		found := 0
		for link := range truth {
			if x.Links[link] {
				found++
			}
		}
		if len(truth) == 0 {
			continue
		}
		recall := float64(found) / float64(len(truth))
		if recall < 0.75 {
			t.Errorf("%s: recall %.3f (%d/%d)", info.Name, recall, found, len(truth))
		}
	}
}

func TestPassiveDropsPollution(t *testing.T) {
	_, run := fixture(t)
	d := run.Passive.Dropped
	if d.Bogon == 0 || d.Cycle == 0 || d.Transient == 0 {
		t.Fatalf("pollution not filtered: %+v", d)
	}
}

func TestPassiveCoverageVariesByIXP(t *testing.T) {
	w, run := fixture(t)
	// IXPs with RS feeders have passive coverage; those without have none.
	for _, prof := range topology.PaperIXPProfiles() {
		x := run.Result.PerIXP[prof.Name]
		if x == nil {
			continue
		}
		if prof.RSFeeders == 0 && x.PassiveCount() > len(x.Members)/2 {
			// A stray background feeder can pick up a few community
			// sets even without a dedicated RS feeder, but coverage
			// must stay marginal (Table 2 reports 0 for these IXPs).
			t.Errorf("%s: passive coverage %d without RS feeders", prof.Name, x.PassiveCount())
		}
		if prof.RSFeeders > 0 && prof.PassiveOpenness > 0.3 && x.PassiveCount() == 0 {
			t.Errorf("%s: no passive coverage despite %d RS feeders", prof.Name, prof.RSFeeders)
		}
	}
	_ = w
}

func TestInvisibleLinkFraction(t *testing.T) {
	w, run := fixture(t)
	// The headline claim: the vast majority of inferred MLP links are
	// invisible in public BGP data (88% in the paper).
	public := run.Passive.Links
	invisible := 0
	for link := range run.Result.Links {
		if !public[link] {
			invisible++
		}
	}
	frac := float64(invisible) / float64(run.Result.TotalLinks())
	if frac < 0.5 {
		t.Fatalf("only %.1f%% of MLP links invisible in public BGP; paper ~88%%", frac*100)
	}
	_ = w
}

func TestMultiIXPOverlap(t *testing.T) {
	_, run := fixture(t)
	if run.Result.MultiIXPLinks() == 0 {
		t.Fatal("no multi-IXP links; co-located members should create overlap")
	}
	if run.Result.SumPerIXPLinks() <= run.Result.TotalLinks() {
		t.Fatal("per-IXP sums should exceed distinct links")
	}
}

func TestQueryCostAccounting(t *testing.T) {
	_, run := fixture(t)
	total := run.Active.TotalQueries()
	if total == 0 {
		t.Fatal("no active queries recorded")
	}
	for name, q := range run.Active.QueriesPerIXP {
		if q < 0 {
			t.Fatalf("%s: negative cost", name)
		}
	}
}

func TestValidationConfirmsLinks(t *testing.T) {
	w, run := fixture(t)
	v := w.Validator(run, 0)
	res, err := v.Validate(context.Background(), run.Result)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tested == 0 {
		t.Fatal("validation tested nothing")
	}
	frac := res.ConfirmedFraction()
	if frac < 0.90 {
		t.Fatalf("validation rate %.3f below 0.90 (paper: 0.984)", frac)
	}
	// Per-LG outcomes exist for both display modes; at this small scale
	// the mode means are noisy, so only sanity bounds are asserted
	// (Fig. 8's cross-mode pattern is examined at full scale).
	var allN, bestN int
	for _, o := range res.PerLG {
		if o.Tested == 0 {
			continue
		}
		if f := o.Fraction(); f < 0 || f > 1 {
			t.Fatalf("LG %s fraction %f out of range", o.Host, f)
		}
		if o.AllPaths {
			allN++
		} else {
			bestN++
		}
	}
	if allN == 0 || bestN == 0 {
		t.Fatalf("LG modes not both exercised: all=%d best=%d", allN, bestN)
	}
}

func TestConsistencyIsHigh(t *testing.T) {
	_, run := fixture(t)
	// §4.3: members apply remarkably consistent communities — the paper
	// found <0.5% of members with any disagreement. Our generator keeps
	// one filter per (IXP, member), so residual inconsistency comes
	// only from passive setter misattribution and must stay tiny.
	for _, name := range run.Merged.IXPs() {
		st := run.Merged.Consistency(name)
		if st.Setters == 0 {
			continue
		}
		frac := float64(st.InconsistentSetters) / float64(st.Setters)
		if st.InconsistentSetters > 1 && frac > 0.02 {
			t.Fatalf("%s: %d/%d inconsistent setters (%.3f)", name, st.InconsistentSetters, st.Setters, frac)
		}
	}
}

func TestReconstructedFiltersMatchTruth(t *testing.T) {
	w, run := fixture(t)
	checked := 0
	mismatched := 0
	for _, info := range w.Topo.IXPs {
		x := run.Result.PerIXP[info.Name]
		for m, got := range x.Filters {
			truth, ok := w.Topo.ExportFilter(info.Name, m)
			if !ok {
				continue
			}
			checked++
			if !got.Equal(truth) {
				mismatched++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no filters checked")
	}
	// Residual mismatch comes from passive misattribution at IXPs with
	// incomplete member lists; it must stay within the paper's <2%.
	if float64(mismatched)/float64(checked) > 0.02 {
		t.Fatalf("%d/%d filters mismatch", mismatched, checked)
	}
}

func TestBuildScenarioWorlds(t *testing.T) {
	// Every registered scenario must build a valid world end to end and
	// sustain the inference pipeline. The baseline fixture is covered by
	// every other test; here the add-on scenarios get a full pass each.
	for _, name := range topology.ScenarioNames() {
		if name == "baseline" {
			continue
		}
		name := name
		t.Run(name, func(t *testing.T) {
			w, err := BuildScenarioWorld(name, topology.TestConfig())
			if err != nil {
				t.Fatal(err)
			}
			defer w.Close()
			if w.Scenario() != name {
				t.Fatalf("Scenario() = %q", w.Scenario())
			}
			run, err := w.RunInference(context.Background(), core.DefaultActiveConfig())
			if err != nil {
				t.Fatal(err)
			}
			if run.Result.TotalLinks() == 0 {
				t.Fatal("no links inferred")
			}
			if name == "remote-peering" {
				remotes := 0
				for _, ms := range w.Topo.RemoteMembers {
					remotes += len(ms)
				}
				if remotes == 0 {
					t.Fatal("remote-peering world has no remote members")
				}
			}
		})
	}
}
