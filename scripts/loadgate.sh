#!/usr/bin/env bash
# loadgate.sh BENCH_gateway.json [MAX_P99_MS]
#
# Grades a cmd/lgload summary of a gateway load run and fails when the
# serving tier misbehaved:
#
#   - any 5xx response (server_5xx > 0)
#   - any transport-level error (errors > 0)
#   - any stale read: a response carrying an epoch older than one the
#     same sequential request chain already observed (stale_reads > 0),
#     which under RCU snapshot publication can only mean a broken
#     pointer swap
#   - the run ended before observing the required number of distinct
#     epochs (min_epochs_met != true) — the gateway stopped committing
#   - p99 latency above MAX_P99_MS (default 500) — 429s excluded from
#     neither: backpressure rejections are fast by construction
#   - zero requests recorded (a vacuous run must not pass)
#
# ALLOW_MISSING_BASE=1 downgrades a missing summary file to a
# skip-with-note, mirroring benchgate.sh, so re-runs of partial
# workflows and the PR introducing the gate don't hard-fail on an
# absent artifact. Uses only awk so CI needs no extra tooling; the
# summary is cmd/lgload's indented JSON, one "key": value per line.
set -euo pipefail

if [ "$#" -lt 1 ]; then
    echo "usage: $0 BENCH_gateway.json [max_p99_ms]" >&2
    exit 2
fi

summary="$1"
max_p99_ms="${2:-500}"

if [ ! -f "$summary" ]; then
    if [ "${ALLOW_MISSING_BASE:-0}" = "1" ]; then
        echo "skip: $summary missing (no load summary produced; gate introduced this PR?)"
        exit 0
    fi
    echo "FAIL: $summary missing" >&2
    exit 1
fi

# field KEY -> first value of a `"KEY": value,` line (empty if absent).
field() {
    awk -v key="\"$1\":" '$1 == key { v = $2; sub(/,$/, "", v); print v; exit }' "$summary"
}

requests="$(field requests_issued)"
errors="$(field errors)"
server_5xx="$(field server_5xx)"
stale_reads="$(field stale_reads)"
min_epochs_met="$(field min_epochs_met)"
epochs="$(field epochs_observed)"
p99_ns="$(field p99_ns)"
qps="$(field sustained_qps)"

for v in requests errors server_5xx stale_reads min_epochs_met p99_ns; do
    if [ -z "$(eval "printf '%s' \"\$$v\"")" ]; then
        echo "FAIL: $summary lacks field $v" >&2
        exit 1
    fi
done

fail=0
if [ "$requests" -le 0 ]; then
    echo "FAIL: zero requests recorded" >&2
    fail=1
fi
if [ "$errors" -ne 0 ]; then
    echo "FAIL: $errors transport errors" >&2
    fail=1
fi
if [ "$server_5xx" -ne 0 ]; then
    echo "FAIL: $server_5xx responses with status 5xx" >&2
    fail=1
fi
if [ "$stale_reads" -ne 0 ]; then
    echo "FAIL: $stale_reads stale reads (epoch went backwards within a sequential request chain)" >&2
    fail=1
fi
if [ "$min_epochs_met" != "true" ]; then
    echo "FAIL: required epoch count not observed (saw ${epochs:-0} distinct epochs)" >&2
    fail=1
fi
p99_over="$(awk -v ns="$p99_ns" -v ms="$max_p99_ms" 'BEGIN { print (ns > ms * 1000000) ? 1 : 0 }')"
if [ "$p99_over" = "1" ]; then
    p99_ms="$(awk -v ns="$p99_ns" 'BEGIN { printf "%.1f", ns / 1000000 }')"
    echo "FAIL: p99 latency ${p99_ms}ms over the ${max_p99_ms}ms budget" >&2
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "ok: $requests requests, ${qps:-?} qps sustained, $epochs epochs, 0 errors/5xx/stale reads, p99 within ${max_p99_ms}ms"
