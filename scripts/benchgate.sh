#!/usr/bin/env bash
# benchgate.sh BASE.txt HEAD.txt MAX_REGRESSION_PCT BENCH_NAME...
#
# Compares raw `go test -bench` outputs (multiple -count samples per
# benchmark) and fails when any named benchmark's mean ns/op regressed
# by more than the given percentage. benchstat renders the human-readable
# diff next to this gate; the gate itself works on the raw samples so a
# benchstat output-format change can never silently disarm it.
#
# A negative MAX_REGRESSION_PCT flips the gate into a speedup
# requirement: HEAD must beat BASE by at least that margin. The CI
# windowed scaling smoke uses this with the 1-core rows of a -cpu=1,4
# run as BASE and the 4-core rows as HEAD, so an accidentally
# serialized close path (4-core ≈ 1-core) fails the PR.
#
# ALLOW_MISSING_BASE=1 downgrades "missing from base" to a skip-with-note
# so a PR that introduces a brand-new benchmark can gate it in the same
# change; a benchmark missing from HEAD always fails (deleting one must
# be an explicit matrix edit, never a silent pass).
set -euo pipefail

if [ "$#" -lt 4 ]; then
    echo "usage: $0 base.txt head.txt max_regression_pct bench_name..." >&2
    exit 2
fi

base="$1"
head="$2"
maxpct="$3"
shift 3

# mean_ns FILE BENCH -> mean ns/op over all samples (sub-benchmarks of
# BENCH, e.g. BenchmarkFoo/case-8, are averaged together).
mean_ns() {
    awk -v bench="$2" '
        $1 ~ "^"bench"(/|-|$)" && $NF == "ns/op" { sum += $(NF-1); n++ }
        # -benchmem output: "name iters ns/op B/op allocs/op" — ns/op is
        # the 3rd column; match it by the unit token that follows it.
        {
            for (i = 2; i < NF; i++) {
                if ($1 ~ "^"bench"(/|-|$)" && $(i+1) == "ns/op" && $NF != "ns/op") {
                    sum += $i; n++
                }
            }
        }
        END {
            if (n == 0) { exit 1 }
            printf "%.2f\n", sum / n
        }
    ' "$1"
}

fail=0
for bench in "$@"; do
    if ! b="$(mean_ns "$base" "$bench")"; then
        if [ "${ALLOW_MISSING_BASE:-0}" = "1" ]; then
            if mean_ns "$head" "$bench" >/dev/null; then
                echo "skip: $bench missing from $base (new benchmark, no baseline yet)"
            else
                echo "FAIL: $bench missing from $head" >&2
                fail=1
            fi
        else
            echo "FAIL: $bench missing from $base" >&2
            fail=1
        fi
        continue
    fi
    h="$(mean_ns "$head" "$bench")" || { echo "FAIL: $bench missing from $head" >&2; fail=1; continue; }
    delta="$(awk -v b="$b" -v h="$h" 'BEGIN { printf "%.1f", (h - b) / b * 100 }')"
    over="$(awk -v d="$delta" -v m="$maxpct" 'BEGIN { print (d > m) ? 1 : 0 }')"
    if [ "$over" = "1" ]; then
        limit="$(awk -v m="$maxpct" 'BEGIN { printf "%+.1f", m }')"
        echo "FAIL: $bench regressed ${delta}% (base ${b} ns/op -> head ${h} ns/op, limit ${limit}%)"
        fail=1
    else
        echo "ok:   $bench ${delta}% (base ${b} ns/op -> head ${h} ns/op)"
    fi
done
exit "$fail"
