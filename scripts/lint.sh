#!/usr/bin/env bash
# lint.sh — run the full lint stack locally, mirroring the CI lint
# job: gofmt, go vet, mlplint (the in-repo invariant multichecker),
# allocgate (compiler escape analysis vs the //mlplint:allocfree
# annotations), and staticcheck (pinned; skipped with a warning when
# the binary is unavailable, e.g. offline).
#
# Usage: ./scripts/lint.sh [packages...]   (default ./...)
set -u

cd "$(dirname "$0")/.."
pkgs=("$@")
if [ ${#pkgs[@]} -eq 0 ]; then
  pkgs=(./...)
fi

# Matches the staticcheck pin in .github/workflows/ci.yml.
STATICCHECK_VERSION=2025.1.1

failed=0

echo "==> gofmt"
fmt_out="$(gofmt -l .)"
if [ -n "$fmt_out" ]; then
  echo "gofmt needed on:" >&2
  echo "$fmt_out" >&2
  failed=1
fi

echo "==> go vet"
go vet "${pkgs[@]}" || failed=1

echo "==> mlplint (invariant analyzers)"
go run ./cmd/mlplint "${pkgs[@]}" || failed=1

echo "==> allocgate (hot-path escape analysis)"
./scripts/allocgate.sh || failed=1

echo "==> staticcheck"
if command -v staticcheck >/dev/null 2>&1; then
  staticcheck "${pkgs[@]}" || failed=1
elif go install "honnef.co/go/tools/cmd/staticcheck@${STATICCHECK_VERSION}" 2>/dev/null &&
  command -v "$(go env GOPATH)/bin/staticcheck" >/dev/null 2>&1; then
  "$(go env GOPATH)/bin/staticcheck" "${pkgs[@]}" || failed=1
else
  echo "warning: staticcheck unavailable (offline?); CI runs it pinned at ${STATICCHECK_VERSION}" >&2
fi

if [ "$failed" -ne 0 ]; then
  echo "lint: FAILED" >&2
  exit 1
fi
echo "lint: OK"
