#!/usr/bin/env bash
# lint.sh — run the full lint stack locally, mirroring the CI lint
# job: gofmt, go vet, mlplint (the in-repo invariant multichecker),
# allocgate (compiler escape analysis vs the //mlplint:allocfree
# annotations), and staticcheck (pinned; skipped with a warning when
# the binary is unavailable, e.g. offline).
#
# Usage: ./scripts/lint.sh [packages...]   (default ./...)
#        ./scripts/lint.sh -frozen-coverage-only
#
# -frozen-coverage-only runs just the serving-tier frozen-annotation
# coverage check (the CI lint job's dedicated step).
set -u

cd "$(dirname "$0")/.."

# The gateway publishes Snapshot by atomic pointer swap and readers
# never synchronize, so its immutability must stay machine-checked:
# both the type and its builder have to carry //mlplint:frozen for the
# frozen analyzer to have jurisdiction. Deleting either annotation
# would silently disarm that check — so their presence is a gate.
frozen_coverage() {
  local ok=0
  for decl in 'type Snapshot struct' 'func NewSnapshot('; do
    if ! awk -v decl="$decl" '
        /^\/\/mlplint:frozen/ { armed = 1; next }
        index($0, decl) == 1  { if (armed) found = 1 }
        !/^\/\// && !/^$/     { armed = 0 }
        END { exit found ? 0 : 1 }
      ' internal/serve/snapshot.go; then
      echo "frozen coverage: internal/serve/snapshot.go: \`$decl\` lost its //mlplint:frozen annotation" >&2
      ok=1
    fi
  done
  return "$ok"
}

if [ "${1:-}" = "-frozen-coverage-only" ]; then
  echo "==> frozen coverage (serving-tier snapshot types)"
  frozen_coverage || { echo "lint: FAILED" >&2; exit 1; }
  echo "lint: OK"
  exit 0
fi

pkgs=("$@")
if [ ${#pkgs[@]} -eq 0 ]; then
  pkgs=(./...)
fi

# Matches the staticcheck pin in .github/workflows/ci.yml.
STATICCHECK_VERSION=2025.1.1

failed=0

echo "==> gofmt"
fmt_out="$(gofmt -l .)"
if [ -n "$fmt_out" ]; then
  echo "gofmt needed on:" >&2
  echo "$fmt_out" >&2
  failed=1
fi

echo "==> go vet"
go vet "${pkgs[@]}" || failed=1

echo "==> mlplint (invariant analyzers)"
go run ./cmd/mlplint "${pkgs[@]}" || failed=1

echo "==> frozen coverage (serving-tier snapshot types)"
frozen_coverage || failed=1

echo "==> allocgate (hot-path escape analysis)"
./scripts/allocgate.sh || failed=1

echo "==> staticcheck"
if command -v staticcheck >/dev/null 2>&1; then
  staticcheck "${pkgs[@]}" || failed=1
elif go install "honnef.co/go/tools/cmd/staticcheck@${STATICCHECK_VERSION}" 2>/dev/null &&
  command -v "$(go env GOPATH)/bin/staticcheck" >/dev/null 2>&1; then
  "$(go env GOPATH)/bin/staticcheck" "${pkgs[@]}" || failed=1
else
  echo "warning: staticcheck unavailable (offline?); CI runs it pinned at ${STATICCHECK_VERSION}" >&2
fi

if [ "$failed" -ne 0 ]; then
  echo "lint: FAILED" >&2
  exit 1
fi
echo "lint: OK"
