#!/usr/bin/env bash
# benchjson.sh BASE.txt HEAD.txt BENCH_NAME... > out.json
#
# Emits a machine-readable summary of a base-vs-head benchmark
# comparison as JSON: per benchmark the sample counts, mean ns/op on
# each side, and the percentage delta. BASE.txt may be /dev/null (or
# simply lack a benchmark) — the base fields are then null, matching
# benchgate.sh's ALLOW_MISSING_BASE skip. Uses only awk so CI needs no
# extra tooling; the schema is
#
#   {"benchmarks": [{"name": ..., "base_ns_op": ..., "head_ns_op": ...,
#                    "base_samples": ..., "head_samples": ...,
#                    "delta_pct": ...}, ...]}
set -euo pipefail

if [ "$#" -lt 3 ]; then
    echo "usage: $0 base.txt head.txt bench_name..." >&2
    exit 2
fi

base="$1"
head="$2"
shift 2

# stats FILE BENCH -> "mean_ns n" (n = 0 when absent). Accepts both
# plain and -benchmem output rows, like benchgate.sh's mean_ns.
stats() {
    awk -v bench="$2" '
        {
            for (i = 2; i < NF; i++) {
                if ($1 ~ "^"bench"(/|-|$)" && $(i+1) == "ns/op") {
                    sum += $i; n++
                    break
                }
            }
        }
        END {
            if (n == 0) { print "0 0" } else { printf "%.2f %d\n", sum / n, n }
        }
    ' "$1"
}

printf '{"benchmarks": ['
sep=""
for bench in "$@"; do
    read -r bmean bn <<<"$(stats "$base" "$bench")"
    read -r hmean hn <<<"$(stats "$head" "$bench")"
    printf '%s' "$sep"
    sep=", "
    awk -v name="$bench" -v bmean="$bmean" -v bn="$bn" -v hmean="$hmean" -v hn="$hn" '
        BEGIN {
            printf "{\"name\": \"%s\", ", name
            if (bn == 0) { printf "\"base_ns_op\": null, \"base_samples\": 0, " }
            else { printf "\"base_ns_op\": %s, \"base_samples\": %d, ", bmean, bn }
            if (hn == 0) { printf "\"head_ns_op\": null, \"head_samples\": 0, " }
            else { printf "\"head_ns_op\": %s, \"head_samples\": %d, ", hmean, hn }
            if (bn == 0 || hn == 0) { printf "\"delta_pct\": null}" }
            else { printf "\"delta_pct\": %.1f}", (hmean - bmean) / bmean * 100 }
        }
    '
done
printf ']}\n'
