#!/usr/bin/env bash
# benchjson.sh BASE.txt HEAD.txt BENCH_NAME... > out.json
#
# Emits a machine-readable summary of a base-vs-head benchmark
# comparison as JSON: per benchmark the sample counts, mean ns/op on
# each side, and the percentage delta. BASE.txt may be /dev/null (or
# simply lack a benchmark) — the base fields are then null, matching
# benchgate.sh's ALLOW_MISSING_BASE skip. Uses only awk so CI needs no
# extra tooling; the schema is
#
#   {"meta": {"goos": ..., "goarch": ..., "cpu": ..., "num_cpu": ...,
#             "cpu_flag": ...},
#    "benchmarks": [{"name": ..., "base_ns_op": ..., "head_ns_op": ...,
#                    "base_samples": ..., "head_samples": ...,
#                    "delta_pct": ...}, ...]}
#
# meta is scraped from HEAD.txt's `go test -bench` header (goos:,
# goarch:, cpu: lines; null when absent), num_cpu is the machine's
# online CPU count, and cpu_flag echoes the BENCH_CPU environment
# variable so a `-cpu=1,4` sweep records which GOMAXPROCS values the
# rows were measured under.
set -euo pipefail

if [ "$#" -lt 3 ]; then
    echo "usage: $0 base.txt head.txt bench_name..." >&2
    exit 2
fi

base="$1"
head="$2"
shift 2

# stats FILE BENCH -> "mean_ns n" (n = 0 when absent). Accepts both
# plain and -benchmem output rows, like benchgate.sh's mean_ns.
stats() {
    awk -v bench="$2" '
        {
            for (i = 2; i < NF; i++) {
                if ($1 ~ "^"bench"(/|-|$)" && $(i+1) == "ns/op") {
                    sum += $i; n++
                    break
                }
            }
        }
        END {
            if (n == 0) { print "0 0" } else { printf "%.2f %d\n", sum / n, n }
        }
    ' "$1"
}

# header FILE KEY -> value of a "key: value" bench-output header line
# (empty when the file has none, e.g. a /dev/null base).
header() {
    awk -v key="$2:" '$1 == key { $1 = ""; sub(/^ /, ""); print; exit }' "$1"
}

goos="$(header "$head" goos)"
goarch="$(header "$head" goarch)"
cpu="$(header "$head" cpu)"
num_cpu="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)"
cpu_flag="${BENCH_CPU:-}"

printf '{"meta": '
awk -v goos="$goos" -v goarch="$goarch" -v cpu="$cpu" \
    -v num_cpu="$num_cpu" -v cpu_flag="$cpu_flag" '
    function str(v) { return v == "" ? "null" : "\"" v "\"" }
    BEGIN {
        printf "{\"goos\": %s, \"goarch\": %s, \"cpu\": %s, \"num_cpu\": %d, \"cpu_flag\": %s}",
            str(goos), str(goarch), str(cpu), num_cpu, str(cpu_flag)
    }
'
printf ', "benchmarks": ['
sep=""
for bench in "$@"; do
    read -r bmean bn <<<"$(stats "$base" "$bench")"
    read -r hmean hn <<<"$(stats "$head" "$bench")"
    printf '%s' "$sep"
    sep=", "
    awk -v name="$bench" -v bmean="$bmean" -v bn="$bn" -v hmean="$hmean" -v hn="$hn" '
        BEGIN {
            printf "{\"name\": \"%s\", ", name
            if (bn == 0) { printf "\"base_ns_op\": null, \"base_samples\": 0, " }
            else { printf "\"base_ns_op\": %s, \"base_samples\": %d, ", bmean, bn }
            if (hn == 0) { printf "\"head_ns_op\": null, \"head_samples\": 0, " }
            else { printf "\"head_ns_op\": %s, \"head_samples\": %d, ", hmean, hn }
            if (bn == 0 || hn == 0) { printf "\"delta_pct\": null}" }
            else { printf "\"delta_pct\": %.1f}", (hmean - bmean) / bmean * 100 }
        }
    '
done
printf ']}\n'
