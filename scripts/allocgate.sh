#!/usr/bin/env bash
# allocgate.sh — cross-check //mlplint:allocfree annotations against
# real compiler escape analysis.
#
#   ./scripts/allocgate.sh                  gate the tree against scripts/allocgate.base
#   ./scripts/allocgate.sh -update          regenerate the baseline from the tree
#   ./scripts/allocgate.sh -compare B C     compare two prepared escape lists
#
# mlplint -allocspans dumps the file:line span of every annotated
# function; `go build -gcflags='<module>/...=-m=1'` reports the
# compiler's escape decisions (the build cache replays -m output, so
# repeated runs cost nothing). Escapes landing inside an annotated
# span are normalized to "funcname<TAB>message" — no line numbers, so
# edits elsewhere in the file don't churn the baseline — then sorted
# and de-duplicated into the escape list.
#
# Gate semantics mirror benchgate.sh: an escape present in the tree
# but not in the checked-in baseline is a new heap allocation on an
# annotated hot path and fails; a baseline escape that disappeared is
# an improvement, reported with a nudge to tighten the baseline via
# -update. ALLOW_MISSING_BASE=1 downgrades a missing baseline file to
# a skip-with-note so the gate can land in the same PR that
# introduces it.
set -euo pipefail
cd "$(dirname "$0")/.."

BASEFILE=scripts/allocgate.base

compare() {
    local basef="$1" curf="$2" fail=0
    local new gone
    new="$(comm -13 "$basef" "$curf")"
    gone="$(comm -23 "$basef" "$curf")"
    if [ -n "$gone" ]; then
        echo "note: escapes in baseline but no longer produced (run $0 -update to tighten):"
        echo "$gone" | sed 's/^/      /'
    fi
    if [ -n "$new" ]; then
        echo "FAIL: new heap escapes in //mlplint:allocfree functions:" >&2
        echo "$new" | sed 's/^/      /' >&2
        echo "hint: hoist the allocation out of the hot path, or audit it and regenerate the baseline with $0 -update" >&2
        fail=1
    else
        echo "ok:   no new escapes ($(wc -l < "$curf" | tr -d ' ') baselined)"
    fi
    return "$fail"
}

if [ "${1:-}" = "-compare" ]; then
    if [ "$#" -ne 3 ]; then
        echo "usage: $0 -compare base current" >&2
        exit 2
    fi
    compare "$2" "$3"
    exit "$?"
fi

module="$(go list -m)"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

go run ./cmd/mlplint -allocspans ./... > "$tmp/spans"
nfuncs="$(wc -l < "$tmp/spans" | tr -d ' ')"
if [ "$nfuncs" -eq 0 ]; then
    echo "FAIL: no //mlplint:allocfree-annotated functions found" >&2
    exit 1
fi

# -m diagnostics land on stderr; the build itself writes nothing.
go build -gcflags="${module}/...=-m=1" ./... 2> "$tmp/m" || {
    cat "$tmp/m" >&2
    exit 2
}

awk -F: '
    NR == FNR { file[NR] = $1; start[NR] = $2; end[NR] = $3; name[NR] = $4; n = NR; next }
    /escapes to heap|moved to heap/ {
        f = $1; line = $2 + 0
        msg = $0
        sub(/^[^:]*:[0-9]*:[0-9]*: /, "", msg)
        for (i = 1; i <= n; i++) {
            if (f == file[i] && line >= start[i] && line <= end[i]) {
                print name[i] "\t" msg
                break
            }
        }
    }
' "$tmp/spans" "$tmp/m" | sort -u > "$tmp/cur"

if [ "${1:-}" = "-update" ]; then
    cp "$tmp/cur" "$BASEFILE"
    echo "wrote $BASEFILE: $(wc -l < "$BASEFILE" | tr -d ' ') escape(s) across $nfuncs annotated function(s)"
    exit 0
fi

if [ ! -f "$BASEFILE" ]; then
    if [ "${ALLOW_MISSING_BASE:-0}" = "1" ]; then
        echo "skip: $BASEFILE missing (new gate, no baseline yet); current escapes:"
        sed 's/^/      /' "$tmp/cur"
        exit 0
    fi
    echo "FAIL: $BASEFILE missing; generate it with $0 -update" >&2
    exit 1
fi

echo "allocgate: $nfuncs annotated function(s)"
compare "$BASEFILE" "$tmp/cur"
