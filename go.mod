module mlpeering

go 1.24
