// Command mlpexperiments reproduces every table and figure of the
// paper's evaluation on a freshly generated world and prints them.
//
// Usage:
//
//	mlpexperiments [-scale 0.3] [-seed 20130501]
package main

import (
	"flag"
	"log"
	"os"
	"strings"
	"time"

	"mlpeering/internal/churn"
	"mlpeering/internal/core"
	"mlpeering/internal/experiments"
	"mlpeering/internal/topology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mlpexperiments: ")

	scale := flag.Float64("scale", 0.3, "world scale (1.0 = paper scale; scaled-world grows IXP count with it)")
	seed := flag.Int64("seed", 20130501, "generation seed")
	scenario := flag.String("scenario", "baseline", "world scenario (one of: "+
		strings.Join(topology.ScenarioNames(), ", ")+")")
	workers := flag.Int("workers", 0, "worker goroutines for per-IXP generation stages (0 = all cores, 1 = sequential; output is identical)")
	churnMode := flag.Bool("churn", false, "run the route-churn dynamics workload (windowed inference) instead of the paper tables")
	churnEpochs := flag.Int("churn-epochs", 6, "churn mode: number of mutation epochs / inference windows")
	churnInterval := flag.Duration("churn-interval", 10*time.Minute, "churn mode: epoch and inference-window duration")
	windowsMode := flag.String("windows-mode", "incremental", "churn mode: per-window mesh derivation (incremental = delta-maintained observation store, remine = re-mine the live table each window)")
	flag.Parse()

	cfg := topology.DefaultConfig()
	cfg.Scale = *scale
	cfg.Seed = *seed
	cfg.Scenario = *scenario
	cfg.Workers = *workers

	if *churnMode {
		mode, err := core.ParseWindowsMode(*windowsMode)
		if err != nil {
			log.Fatal(err)
		}
		ccfg := churn.DefaultConfig(*seed + 11)
		ccfg.Epochs = *churnEpochs
		ccfg.Interval = *churnInterval
		start := time.Now()
		res, err := experiments.RunChurn(cfg, ccfg, mode)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("churn run ready in %v (scale %v, scenario %s, %d epochs, %s windows)",
			time.Since(start).Round(time.Millisecond), *scale, *scenario, ccfg.Epochs, mode)
		res.Render().Render(os.Stdout)
		return
	}

	start := time.Now()
	ctx, err := experiments.NewContext(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer ctx.Close()
	log.Printf("world + inference ready in %v (scale %v, scenario %s)",
		time.Since(start).Round(time.Millisecond), *scale, *scenario)

	if err := ctx.RunAll(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
