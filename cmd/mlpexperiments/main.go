// Command mlpexperiments reproduces every table and figure of the
// paper's evaluation on a freshly generated world and prints them.
//
// Usage:
//
//	mlpexperiments [-scale 0.3] [-seed 20130501]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	"mlpeering/internal/churn"
	"mlpeering/internal/core"
	"mlpeering/internal/experiments"
	"mlpeering/internal/topology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mlpexperiments: ")

	scale := flag.Float64("scale", 0.3, "world scale (1.0 = paper scale; scaled-world grows IXP count with it)")
	seed := flag.Int64("seed", 20130501, "generation seed")
	scenario := flag.String("scenario", "baseline", "world scenario (one of: "+
		strings.Join(topology.ScenarioNames(), ", ")+")")
	workers := flag.Int("workers", 0, "worker goroutines for per-IXP generation stages (0 = all cores, 1 = sequential; output is identical)")
	churnMode := flag.Bool("churn", false, "run the route-churn dynamics workload (windowed inference) instead of the paper tables")
	churnEpochs := flag.Int("churn-epochs", 6, "churn mode: number of mutation epochs / inference windows")
	churnInterval := flag.Duration("churn-interval", 10*time.Minute, "churn mode: epoch and inference-window duration")
	windowsMode := flag.String("windows-mode", "incremental", "churn mode: per-window mesh derivation (incremental = delta-maintained observation store, remine = re-mine the live table each window)")
	churnStream := flag.Bool("churn-stream", false, "churn mode: stream windows instead of retaining them (long-horizon replay; prints per-window close stats and a summary)")
	churnWindows := flag.Int("churn-windows", 0, "churn mode with -churn-stream: total windows to replay (0 = one per epoch; extras replay over the final live table)")
	flag.Parse()

	cfg := topology.DefaultConfig()
	cfg.Scale = *scale
	cfg.Seed = *seed
	cfg.Scenario = *scenario
	cfg.Workers = *workers

	if *churnMode {
		mode, err := core.ParseWindowsMode(*windowsMode)
		if err != nil {
			log.Fatal(err)
		}
		ccfg := churn.DefaultConfig(*seed + 11)
		ccfg.Epochs = *churnEpochs
		ccfg.Interval = *churnInterval
		start := time.Now()
		if *churnStream {
			runChurnStream(cfg, ccfg, mode, *churnWindows, start)
			return
		}
		res, err := experiments.RunChurn(cfg, ccfg, mode)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("churn run ready in %v (scale %v, scenario %s, %d epochs, %s windows)",
			time.Since(start).Round(time.Millisecond), *scale, *scenario, ccfg.Epochs, mode)
		res.Render().Render(os.Stdout)
		return
	}

	start := time.Now()
	ctx, err := experiments.NewContext(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer ctx.Close()
	log.Printf("world + inference ready in %v (scale %v, scenario %s)",
		time.Since(start).Round(time.Millisecond), *scale, *scenario)

	if err := ctx.RunAll(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// runChurnStream replays the churn trace in streaming mode: windows are
// handed back one at a time and never retained, so the horizon can run
// far past the mutation epochs at flat memory. Per-window close stats go
// to stdout; a summary of first/second-half close times and the post-GC
// heap follows.
func runChurnStream(cfg topology.Config, ccfg churn.Config, mode core.WindowsMode, windows int, start time.Time) {
	ct, err := experiments.BuildChurnTrace(cfg, ccfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("churn trace ready in %v (scenario %s, %d epochs @ %v)",
		time.Since(start).Round(time.Millisecond), ct.Scenario, ct.Epochs, ct.Interval)

	total := windows
	if total <= 0 {
		total = ct.Epochs
	}
	var closes []time.Duration
	var ms runtime.MemStats
	err = ct.StreamWindows(mode, windows, func(w *core.PassiveWindow) {
		closes = append(closes, w.CloseTime)
		fmt.Fprintf(os.Stdout, "window %3d: live %6d rels %5d p2p %5d mesh %4d stability %.3f close %v\n",
			len(closes)-1, w.LiveRoutes, w.RelLinks, w.P2PRels, w.MeshLinks, w.Stability,
			w.CloseTime.Round(time.Microsecond))
		if len(closes) == total {
			// Sample while the mining state is still live; after the
			// replay returns it is garbage and the number would only
			// reflect the trace.
			runtime.GC()
			runtime.ReadMemStats(&ms)
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	half := len(closes) / 2
	mean := func(ds []time.Duration) time.Duration {
		if len(ds) == 0 {
			return 0
		}
		var sum time.Duration
		for _, d := range ds {
			sum += d
		}
		return sum / time.Duration(len(ds))
	}
	log.Printf("streamed %d windows (%s mode): mean close %v (first half %v, second half %v), live heap %.1f MB",
		len(closes), mode, mean(closes).Round(time.Microsecond),
		mean(closes[:half]).Round(time.Microsecond), mean(closes[half:]).Round(time.Microsecond),
		float64(ms.HeapAlloc)/(1<<20))
}
