// Command mlpexperiments reproduces every table and figure of the
// paper's evaluation on a freshly generated world and prints them.
//
// Usage:
//
//	mlpexperiments [-scale 0.3] [-seed 20130501]
package main

import (
	"flag"
	"log"
	"os"
	"strings"
	"time"

	"mlpeering/internal/experiments"
	"mlpeering/internal/topology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mlpexperiments: ")

	scale := flag.Float64("scale", 0.3, "world scale (1.0 = paper scale; scaled-world grows IXP count with it)")
	seed := flag.Int64("seed", 20130501, "generation seed")
	scenario := flag.String("scenario", "baseline", "world scenario (one of: "+
		strings.Join(topology.ScenarioNames(), ", ")+")")
	workers := flag.Int("workers", 0, "worker goroutines for per-IXP generation stages (0 = all cores, 1 = sequential; output is identical)")
	flag.Parse()

	cfg := topology.DefaultConfig()
	cfg.Scale = *scale
	cfg.Seed = *seed
	cfg.Scenario = *scenario
	cfg.Workers = *workers

	start := time.Now()
	ctx, err := experiments.NewContext(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer ctx.Close()
	log.Printf("world + inference ready in %v (scale %v, scenario %s)",
		time.Since(start).Round(time.Millisecond), *scale, *scenario)

	if err := ctx.RunAll(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
