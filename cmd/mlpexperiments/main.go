// Command mlpexperiments reproduces every table and figure of the
// paper's evaluation on a freshly generated world and prints them.
//
// Usage:
//
//	mlpexperiments [-scale 0.3] [-seed 20130501]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"mlpeering/internal/churn"
	"mlpeering/internal/core"
	"mlpeering/internal/experiments"
	"mlpeering/internal/topology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mlpexperiments: ")

	scale := flag.Float64("scale", 0.3, "world scale (1.0 = paper scale; scaled-world grows IXP count with it)")
	seed := flag.Int64("seed", 20130501, "generation seed")
	scenario := flag.String("scenario", "baseline", "world scenario (one of: "+
		strings.Join(topology.ScenarioNames(), ", ")+")")
	workers := flag.Int("workers", 0, "worker goroutines for per-IXP generation stages (0 = all cores, 1 = sequential; output is identical)")
	churnMode := flag.Bool("churn", false, "run the route-churn dynamics workload (windowed inference) instead of the paper tables")
	churnEpochs := flag.Int("churn-epochs", 6, "churn mode: number of mutation epochs / inference windows")
	churnInterval := flag.Duration("churn-interval", 10*time.Minute, "churn mode: epoch and inference-window duration")
	windowsMode := flag.String("windows-mode", "incremental", "churn mode: per-window mesh derivation (incremental = delta-maintained observation store, remine = re-mine the live table each window)")
	churnStream := flag.Bool("churn-stream", false, "churn mode: stream windows instead of retaining them (long-horizon replay; prints per-window close stats and a summary)")
	churnWindows := flag.Int("churn-windows", 0, "churn mode with -churn-stream: total windows to replay (0 = one per epoch; extras replay over the final live table)")
	churnWorkers := flag.Int("churn-workers", 0, "churn mode: worker goroutines for window closes (0 = all cores, 1 = sequential; output is identical)")
	cpuProfile := flag.String("cpuprofile", "", "churn mode: write a CPU profile covering only the windowed replay (world and trace build excluded) to this file")
	memProfile := flag.String("memprofile", "", "churn mode: write a post-replay heap profile to this file")
	flag.Parse()

	cfg := topology.DefaultConfig()
	cfg.Scale = *scale
	cfg.Seed = *seed
	cfg.Scenario = *scenario
	cfg.Workers = *workers

	if *churnMode {
		mode, err := core.ParseWindowsMode(*windowsMode)
		if err != nil {
			log.Fatal(err)
		}
		ccfg := churn.DefaultConfig(*seed + 11)
		ccfg.Epochs = *churnEpochs
		ccfg.Interval = *churnInterval
		start := time.Now()
		// The trace is built before the profile starts, so -cpuprofile
		// captures exactly the windowed replay: the parallel close path
		// under measurement, not world generation.
		ct, err := experiments.BuildChurnTrace(cfg, ccfg)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("churn trace ready in %v (scale %v, scenario %s, %d epochs @ %v)",
			time.Since(start).Round(time.Millisecond), *scale, ct.Scenario, ct.Epochs, ct.Interval)
		stopCPU := startCPUProfile(*cpuProfile)
		if *churnStream {
			runChurnStream(ct, mode, *churnWindows, *churnWorkers)
		} else {
			res, err := ct.Run(mode, *churnWorkers)
			if err != nil {
				log.Fatal(err)
			}
			res.Render().Render(os.Stdout)
		}
		stopCPU()
		writeMemProfile(*memProfile)
		return
	}

	start := time.Now()
	ctx, err := experiments.NewContext(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer ctx.Close()
	log.Printf("world + inference ready in %v (scale %v, scenario %s)",
		time.Since(start).Round(time.Millisecond), *scale, *scenario)

	if err := ctx.RunAll(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// startCPUProfile begins a CPU profile into file (no-op for "") and
// returns the stop function.
func startCPUProfile(file string) func() {
	if file == "" {
		return func() {}
	}
	f, err := os.Create(file)
	if err != nil {
		log.Fatal(err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		log.Fatal(err)
	}
	return func() {
		pprof.StopCPUProfile()
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("cpu profile written to %s", file)
	}
}

// writeMemProfile writes a post-GC heap profile to file (no-op for "").
func writeMemProfile(file string) {
	if file == "" {
		return
	}
	f, err := os.Create(file)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		log.Fatal(err)
	}
	log.Printf("heap profile written to %s", file)
}

// runChurnStream replays the churn trace in streaming mode: windows are
// handed back one at a time and never retained, so the horizon can run
// far past the mutation epochs at flat memory. Per-window close stats go
// to stdout; a summary of first/second-half close times and the post-GC
// heap follows.
func runChurnStream(ct *experiments.ChurnTrace, mode core.WindowsMode, windows, workers int) {
	total := windows
	if total <= 0 {
		total = ct.Epochs
	}
	var closes []time.Duration
	var ms runtime.MemStats
	err := ct.StreamWindows(mode, windows, workers, func(w *core.PassiveWindow) {
		closes = append(closes, w.CloseTime)
		fmt.Fprintf(os.Stdout, "window %3d: live %6d rels %5d p2p %5d mesh %4d stability %.3f close %v\n",
			len(closes)-1, w.LiveRoutes, w.RelLinks, w.P2PRels, w.MeshLinks, w.Stability,
			w.CloseTime.Round(time.Microsecond))
		if len(closes) == total {
			// Sample while the mining state is still live; after the
			// replay returns it is garbage and the number would only
			// reflect the trace.
			runtime.GC()
			runtime.ReadMemStats(&ms)
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	half := len(closes) / 2
	mean := func(ds []time.Duration) time.Duration {
		if len(ds) == 0 {
			return 0
		}
		var sum time.Duration
		for _, d := range ds {
			sum += d
		}
		return sum / time.Duration(len(ds))
	}
	log.Printf("streamed %d windows (%s mode): mean close %v (first half %v, second half %v), live heap %.1f MB",
		len(closes), mode, mean(closes).Round(time.Microsecond),
		mean(closes[:half]).Round(time.Microsecond), mean(closes[half:]).Round(time.Microsecond),
		float64(ms.HeapAlloc)/(1<<20))
}
