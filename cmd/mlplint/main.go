// Command mlplint is the repo's determinism-and-concurrency
// multichecker. It runs the internal/lint analyzer suite (maporder,
// rngclock, sharddiscipline, floatorder) over the packages matching
// the given patterns (default ./...) and exits nonzero on any
// finding. It is stdlib-only and needs no install step:
//
//	go run ./cmd/mlplint ./...
//
// Deliberate exceptions are waived in source with
// //mlplint:<rule> <reason>; see internal/lint and the README's
// "Determinism rules" section.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"mlpeering/internal/lint"
	"mlpeering/internal/lint/analysis"
	"mlpeering/internal/lint/load"
)

func main() {
	listOnly := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: mlplint [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the mlplint determinism analyzers over the given package\npatterns (default ./...).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listOnly {
		for _, a := range lint.Analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Load(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlplint:", err)
		os.Exit(2)
	}

	type diag struct {
		file      string
		line, col int
		analyzer  string
		msg       string
	}
	var diags []diag
	for _, pkg := range pkgs {
		for _, a := range lint.Analyzers {
			name := a.Name
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Report: func(d analysis.Diagnostic) {
					pos := pkg.Fset.Position(d.Pos)
					diags = append(diags, diag{
						file:     pos.Filename,
						line:     pos.Line,
						col:      pos.Column,
						analyzer: name,
						msg:      d.Message,
					})
				},
			}
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "mlplint: %s on %s: %v\n", a.Name, pkg.Path, err)
				os.Exit(2)
			}
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		if a.col != b.col {
			return a.col < b.col
		}
		return a.analyzer < b.analyzer
	})

	cwd, _ := os.Getwd()
	seen := make(map[diag]bool)
	for _, d := range diags {
		if seen[d] {
			continue
		}
		seen[d] = true
		file := d.file
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, file); err == nil && len(rel) < len(file) {
				file = rel
			}
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", file, d.line, d.col, d.analyzer, d.msg)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "mlplint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
