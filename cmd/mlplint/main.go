// Command mlplint is the repo's determinism-and-concurrency
// multichecker. It runs the internal/lint analyzer suite (maporder,
// rngclock, sharddiscipline, floatorder, frozen, guardedby,
// allocfree) over the packages matching the given patterns (default
// ./...) and exits nonzero on any live finding. It is stdlib-only and
// needs no install step:
//
//	go run ./cmd/mlplint ./...
//	go run ./cmd/mlplint -json ./... > mlplint.json
//	go run ./cmd/mlplint -rules frozen,guardedby ./internal/core
//	go run ./cmd/mlplint -allocspans ./...
//
// -json emits the sorted diagnostics — including waived ones, which
// never affect the exit code — as a machine-readable array.
// -allocspans dumps the //mlplint:allocfree-annotated function spans
// for scripts/allocgate.sh to cross-check against compiler escape
// analysis.
//
// Deliberate exceptions are waived in source with
// //mlplint:<rule> <reason>; see internal/lint and the README's
// "Checked invariants" section.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"mlpeering/internal/lint"
	"mlpeering/internal/lint/analysis"
	"mlpeering/internal/lint/load"
)

// moduleSyntax adapts the loaded package set to analysis.ModuleSyntax
// so annotation-driven analyzers (frozen) see cross-package syntax.
type moduleSyntax map[string][]*ast.File

func (m moduleSyntax) PackageFiles(path string) []*ast.File { return m[path] }

func main() {
	listOnly := flag.Bool("list", false, "list the analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON (includes waived findings)")
	rulesFlag := flag.String("rules", "", "comma-separated analyzer names to run (default all)")
	allocSpans := flag.Bool("allocspans", false, "dump //mlplint:allocfree function spans (file:start:end:name) and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: mlplint [flags] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the mlplint determinism analyzers over the given package\npatterns (default ./...).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listOnly {
		for _, a := range lint.Analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.Analyzers
	if *rulesFlag != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range lint.Analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*rulesFlag, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "mlplint: unknown analyzer %q (see -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Load(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlplint:", err)
		os.Exit(2)
	}

	cwd, _ := os.Getwd()
	relpath := func(file string) string {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, file); err == nil && len(rel) < len(file) {
				return rel
			}
		}
		return file
	}

	if *allocSpans {
		for _, pkg := range pkgs {
			for _, s := range lint.AllocFreeSpans(pkg.Fset, pkg.Files) {
				fmt.Printf("%s:%d:%d:%s\n", relpath(s.File), s.Start, s.End, s.Name)
			}
		}
		return
	}

	module := make(moduleSyntax, len(pkgs))
	for _, pkg := range pkgs {
		module[pkg.Path] = pkg.Files
	}

	type diag struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"rule"`
		Msg      string `json:"message"`
		Waived   bool   `json:"waived"`
	}
	var diags []diag
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			name := a.Name
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Module:    module,
				Report: func(d analysis.Diagnostic) {
					pos := pkg.Fset.Position(d.Pos)
					diags = append(diags, diag{
						File:     pos.Filename,
						Line:     pos.Line,
						Col:      pos.Column,
						Analyzer: name,
						Msg:      d.Message,
						Waived:   d.Waived,
					})
				},
			}
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "mlplint: %s on %s: %v\n", a.Name, pkg.Path, err)
				os.Exit(2)
			}
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Msg < b.Msg
	})

	live := 0
	seen := make(map[diag]bool)
	out := diags[:0]
	for _, d := range diags {
		if seen[d] {
			continue
		}
		seen[d] = true
		d.File = relpath(d.File)
		out = append(out, d)
		if !d.Waived {
			live++
			if !*jsonOut {
				fmt.Printf("%s:%d:%d: %s: %s\n", d.File, d.Line, d.Col, d.Analyzer, d.Msg)
			}
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if out == nil {
			out = []diag{}
		}
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "mlplint:", err)
			os.Exit(2)
		}
	}
	if live > 0 {
		fmt.Fprintf(os.Stderr, "mlplint: %d finding(s)\n", live)
		os.Exit(1)
	}
}
