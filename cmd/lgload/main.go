// Command lgload drives a deterministic HTTP workload against a
// running lgserve gateway and emits a machine-readable JSON summary of
// latency, throughput, status codes, cache behaviour and epoch
// progression — the serving-tier counterpart of scripts/benchjson.sh,
// whose meta object shape it reuses.
//
// The workload is deterministic: every worker walks the same fixed
// endpoint rotation (offset by worker index) and alternates
// unconditional and If-None-Match conditional requests, so two runs
// against equally-behaving gateways issue the identical request
// sequence. Each worker also checks epoch monotonicity per response
// chain: its requests are sequential, so under RCU snapshot
// publication the X-MLP-Epoch it observes can never decrease — any
// decrease is a stale read and is counted (and failed on by
// scripts/loadgate.sh).
//
// Usage:
//
//	lgload [-url http://127.0.0.1:8080] [-requests 4000] [-concurrency 16]
//	       [-min-epochs 5] [-max-duration 120s] [-ready-timeout 180s]
//	       [-out BENCH_gateway.json]
//
// lgload exits 0 whenever the run completed and the summary was
// written, even if the gateway misbehaved — grading the summary is
// loadgate.sh's job.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"sync"
	"time"

	"mlpeering/internal/metrics"
)

// paths is the fixed endpoint rotation every worker walks.
var paths = []string{
	"/v1/epoch",
	"/v1/mesh",
	"/v1/stats",
	"/v1/ixps",
	"/v1/link?a=20121&b=20122",
	"/v1/as/20121",
	"/v1/epoch",
	"/v1/stats",
}

type meta struct {
	GOOS    string  `json:"goos"`
	GOARCH  string  `json:"goarch"`
	CPU     *string `json:"cpu"`
	NumCPU  int     `json:"num_cpu"`
	CPUFlag *string `json:"cpu_flag"`
}

type workload struct {
	URL         string `json:"url"`
	Requests    int64  `json:"requests"`
	Concurrency int    `json:"concurrency"`
	MinEpochs   int    `json:"min_epochs"`
}

type latencySummary struct {
	MeanNS int64 `json:"mean_ns"`
	P50NS  int64 `json:"p50_ns"`
	P90NS  int64 `json:"p90_ns"`
	P99NS  int64 `json:"p99_ns"`
	MaxNS  int64 `json:"max_ns"`
}

type results struct {
	Requests     int64          `json:"requests_issued"`
	Errors       int64          `json:"errors"`
	Status       map[string]int `json:"status"`
	Server5xx    int64          `json:"server_5xx"`
	Rejected429  int64          `json:"rejected_429"`
	NotModified  int64          `json:"not_modified_304"`
	StaleReads   int64          `json:"stale_reads"`
	EpochsSeen   int            `json:"epochs_observed"`
	FirstEpoch   uint64         `json:"first_epoch"`
	LastEpoch    uint64         `json:"last_epoch"`
	MinEpochsMet bool           `json:"min_epochs_met"`
	ElapsedNS    int64          `json:"elapsed_ns"`
	SustainedQPS float64        `json:"sustained_qps"`
	Latency      latencySummary `json:"latency_ns"`
}

type report struct {
	Meta     meta     `json:"meta"`
	Workload workload `json:"workload"`
	Results  results  `json:"results"`
}

// worker issues requests from the shared counter until the run's stop
// condition is met, recording everything locally (merged at the end).
type worker struct {
	id        int
	client    *http.Client
	base      string
	latencies []int64
	statuses  map[int]int
	epochs    map[uint64]struct{}
	etags     map[string]string
	stale     int64
	notMod    int64
	errors    int64
	issued    int64
	lastEpoch uint64
}

func (w *worker) do(seq int64) {
	path := paths[(seq+int64(w.id))%int64(len(paths))]
	req, err := http.NewRequest(http.MethodGet, w.base+path, nil)
	if err != nil {
		w.errors++
		return
	}
	// Every second request per path revalidates with the last-seen
	// ETag, exercising the 304 path deterministically.
	if etag := w.etags[path]; etag != "" && seq%2 == 1 {
		req.Header.Set("If-None-Match", etag)
	}
	start := time.Now()
	resp, err := w.client.Do(req)
	lat := time.Since(start).Nanoseconds()
	w.issued++
	if err != nil {
		w.errors++
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	w.latencies = append(w.latencies, lat)
	w.statuses[resp.StatusCode]++
	if resp.StatusCode == http.StatusNotModified {
		w.notMod++
	}
	if etag := resp.Header.Get("ETag"); etag != "" {
		w.etags[path] = etag
	}
	if eh := resp.Header.Get("X-MLP-Epoch"); eh != "" {
		if e, err := strconv.ParseUint(eh, 10, 64); err == nil {
			// This worker's requests are sequential: an epoch older
			// than one it already observed is a stale read.
			if e < w.lastEpoch {
				w.stale++
			}
			w.lastEpoch = e
			w.epochs[e] = struct{}{}
		}
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("lgload: ")

	base := flag.String("url", "http://127.0.0.1:8080", "gateway base URL")
	requests := flag.Int64("requests", 4000, "minimum total requests to issue")
	concurrency := flag.Int("concurrency", 16, "concurrent workers")
	minEpochs := flag.Int("min-epochs", 5, "keep issuing requests until this many distinct epochs were observed")
	maxDuration := flag.Duration("max-duration", 120*time.Second, "hard cap on the measurement run")
	readyTimeout := flag.Duration("ready-timeout", 180*time.Second, "how long to wait for the gateway's first snapshot")
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	client := &http.Client{
		Timeout: 10 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        *concurrency * 2,
			MaxIdleConnsPerHost: *concurrency * 2,
		},
	}

	if err := waitReady(client, *base, *readyTimeout); err != nil {
		log.Fatal(err)
	}

	var (
		seq      int64
		seqMu    sync.Mutex
		seen     = make(map[uint64]struct{})
		seenMu   sync.Mutex
		workers  = make([]*worker, *concurrency)
		wg       sync.WaitGroup
		deadline = time.Now().Add(*maxDuration)
	)
	// next hands out the global request sequence and decides whether
	// the run should continue: the request budget must be spent AND
	// minEpochs distinct epochs observed (or the deadline passed).
	next := func(w *worker) (int64, bool) {
		seenMu.Lock()
		for e := range w.epochs {
			seen[e] = struct{}{}
		}
		epochsDone := len(seen) >= *minEpochs
		seenMu.Unlock()
		seqMu.Lock()
		defer seqMu.Unlock()
		if seq >= *requests && epochsDone {
			return 0, false
		}
		if time.Now().After(deadline) {
			return 0, false
		}
		seq++
		return seq - 1, true
	}

	start := time.Now()
	for i := 0; i < *concurrency; i++ {
		w := &worker{
			id:       i,
			client:   client,
			base:     *base,
			statuses: make(map[int]int),
			epochs:   make(map[uint64]struct{}),
			etags:    make(map[string]string),
		}
		workers[i] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				s, ok := next(w)
				if !ok {
					return
				}
				w.do(s)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := merge(workers, elapsed, *minEpochs)
	rep.Meta = meta{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, NumCPU: runtime.NumCPU()}
	rep.Workload = workload{URL: *base, Requests: *requests, Concurrency: *concurrency, MinEpochs: *minEpochs}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("done: %d requests in %v (%.0f qps), %d epochs observed, %d stale reads",
		rep.Results.Requests, elapsed.Round(time.Millisecond),
		rep.Results.SustainedQPS, rep.Results.EpochsSeen, rep.Results.StaleReads)
}

// waitReady polls /v1/epoch until the gateway serves its first
// snapshot (any 200) or the timeout passes.
func waitReady(client *http.Client, base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := client.Get(base + "/v1/epoch")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("gateway at %s not ready after %v", base, timeout)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// merge folds the per-worker records into the report.
func merge(workers []*worker, elapsed time.Duration, minEpochs int) *report {
	res := results{Status: make(map[string]int)}
	var lats []int64
	epochs := make(map[uint64]struct{})
	for _, w := range workers {
		res.Requests += w.issued
		res.Errors += w.errors
		res.StaleReads += w.stale
		res.NotModified += w.notMod
		lats = append(lats, w.latencies...)
		for code, n := range w.statuses {
			res.Status[strconv.Itoa(code)] += n
			if code >= 500 {
				res.Server5xx += int64(n)
			}
			if code == http.StatusTooManyRequests {
				res.Rejected429 += int64(n)
			}
		}
		for e := range w.epochs {
			epochs[e] = struct{}{}
		}
	}
	res.EpochsSeen = len(epochs)
	first, last := uint64(0), uint64(0)
	for e := range epochs {
		if first == 0 || e < first {
			first = e
		}
		if e > last {
			last = e
		}
	}
	res.FirstEpoch, res.LastEpoch = first, last
	res.MinEpochsMet = len(epochs) >= minEpochs
	res.ElapsedNS = elapsed.Nanoseconds()
	if elapsed > 0 {
		res.SustainedQPS = float64(res.Requests) / elapsed.Seconds()
	}
	d := metrics.NewDistributionInt64s(lats)
	if d.Len() > 0 {
		res.Latency = latencySummary{
			MeanNS: int64(d.Mean()),
			P50NS:  int64(d.Quantile(0.50)),
			P90NS:  int64(d.Quantile(0.90)),
			P99NS:  int64(d.Quantile(0.99)),
			MaxNS:  int64(d.Max()),
		}
	}
	return &report{Results: res}
}
