// Command topogen generates a synthetic measurement world and writes
// its data artifacts to disk: collector MRT archives (RIB dump and
// update trace), the IRR database in RPSL, the PeeringDB registry as
// JSON, and a topology summary.
//
// Usage:
//
//	topogen -out DIR [-scale 1.0] [-seed 20130501]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"mlpeering/internal/collector"
	"mlpeering/internal/irr"
	"mlpeering/internal/pipeline"
	"mlpeering/internal/propagate"
	"mlpeering/internal/topology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("topogen: ")

	out := flag.String("out", "world", "output directory")
	scale := flag.Float64("scale", 1.0, "world scale (1.0 = paper scale; scaled-world grows IXP count with it)")
	seed := flag.Int64("seed", 20130501, "generation seed")
	scenario := flag.String("scenario", "baseline", "world scenario (see -list-scenarios)")
	workers := flag.Int("workers", 0, "worker goroutines for per-IXP generation stages (0 = all cores, 1 = sequential; output is identical)")
	list := flag.Bool("list-scenarios", false, "list registered world scenarios and exit")
	flag.Parse()

	if *list {
		for _, sc := range topology.Scenarios() {
			fmt.Printf("%-18s %s\n", sc.Name, sc.Description)
		}
		return
	}

	cfg := topology.DefaultConfig()
	cfg.Scale = *scale
	cfg.Seed = *seed
	cfg.Scenario = *scenario
	cfg.Workers = *workers

	start := time.Now()
	topo, err := topology.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	st := topo.Stats()
	log.Printf("generated %q world: %d ASes (%d tier-1, %d transit, %d stub), %d IXPs, %d prefixes in %v",
		*scenario, st.ASes, st.Tier1s, st.Transits, st.Stubs, st.IXPs, st.Prefixes, time.Since(start).Round(time.Millisecond))

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	engine := propagate.NewEngine(topo, 0)
	col := collector.New("rrc-synth", engine, nil, 8)
	ribPath := filepath.Join(*out, "rib.mrt")
	if err := col.WriteRIBFile(ribPath, pipeline.Timestamp); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", ribPath)

	updPath := filepath.Join(*out, "updates.mrt")
	updOpts := collector.UpdateOptions{Churn: 500, TransientPaths: 25, PoisonedPaths: 15, BogonPaths: 10, Seed: cfg.Seed + 2}
	if err := col.WriteUpdatesFile(updPath, pipeline.Timestamp.Add(time.Hour), updOpts); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", updPath)

	irrPath := filepath.Join(*out, "irr.rpsl")
	reg := irr.Build(topo, cfg.IRRRegistrationFrac, cfg.Seed+1)
	f, err := os.Create(irrPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := irr.WriteObjects(f, reg.Objects()); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d objects)", irrPath, reg.Len())

	// PeeringDB snapshot via the pipeline's builder.
	w, err := pipeline.BuildWorld(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer w.Close()
	pdbPath := filepath.Join(*out, "peeringdb.json")
	if err := w.PDB.SaveFile(pdbPath); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d records)", pdbPath, w.PDB.Len())

	summary := filepath.Join(*out, "SUMMARY.txt")
	sf, err := os.Create(summary)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(sf, "seed=%d scale=%v scenario=%s\n%+v\n\nIXPs:\n", cfg.Seed, cfg.Scale, cfg.Scenario, st)
	for _, info := range topo.IXPs {
		fmt.Fprintf(sf, "  %-10s members=%d rs=%d lg=%v\n",
			info.Name, len(info.Members), len(info.RSMembers), info.HasLG)
	}
	if err := sf.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", summary)
}
