// Command lgserve generates a world and serves its looking glasses over
// HTTP for interactive exploration, printing the available endpoints.
//
// Usage:
//
//	lgserve [-scale 0.2] [-addr 127.0.0.1:8080]
//
// Query examples:
//
//	curl 'http://127.0.0.1:8080/rs/DE-CIX?q=show+ip+bgp+summary'
//	curl 'http://127.0.0.1:8080/rs/DE-CIX?q=show+ip+bgp+20.1.4.0/24'
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"sort"
	"time"

	"mlpeering/internal/pipeline"
	"mlpeering/internal/topology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lgserve: ")

	scale := flag.Float64("scale", 0.2, "world scale")
	seed := flag.Int64("seed", 20130501, "generation seed")
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	flag.Parse()

	cfg := topology.DefaultConfig()
	cfg.Scale = *scale
	cfg.Seed = *seed

	start := time.Now()
	w, err := pipeline.BuildWorld(cfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("world built in %v", time.Since(start).Round(time.Millisecond))

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	for _, info := range w.Topo.IXPs {
		if info.HasLG {
			fmt.Printf("route server LG: http://%s/rs/%s?q=show+ip+bgp+summary\n", ln.Addr(), info.Name)
		}
	}
	// Print one example member LG; pick it by sorted IXP name so the
	// banner is stable run to run.
	names := make([]string, 0, len(w.Topo.MemberLGs))
	for name := range w.Topo.MemberLGs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if lgs := w.Topo.MemberLGs[name]; len(lgs) > 0 {
			fmt.Printf("member LG:       http://%s/as/%s?q=show+ip+bgp+<prefix>\n", ln.Addr(), lgs[0].ASN)
			break
		}
	}
	log.Printf("serving on %s", ln.Addr())
	srv := &http.Server{Handler: w.LGHandler()}
	log.Fatal(srv.Serve(ln))
}
