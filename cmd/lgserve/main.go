// Command lgserve serves the inference over HTTP. By default it runs
// the epoch-pinned gateway: a background reconciler churns a generated
// world, replays it through the incremental windowed inference, and
// publishes each committed window as an immutable epoch snapshot that
// the query endpoints serve with real cache semantics (ETag /
// If-None-Match / Last-Modified / bounded in-flight backpressure).
// With -static it reverts to the original looking-glass server over a
// single frozen world.
//
// Usage:
//
//	lgserve [-scale 0.2] [-addr 127.0.0.1:8080] [-static]
//	        [-churn-epochs 12] [-churn-interval 1m] [-epoch-interval 200ms]
//	        [-max-inflight 256] [-max-age 0] [-drain 10s] [-workers 0]
//
// Gateway query examples:
//
//	curl -i 'http://127.0.0.1:8080/v1/epoch'
//	curl -i 'http://127.0.0.1:8080/v1/mesh'
//	curl -i 'http://127.0.0.1:8080/v1/link?a=20121&b=20122'
//	curl -i -H 'If-None-Match: "e3-..."' 'http://127.0.0.1:8080/v1/stats'
//
// Static-mode query examples:
//
//	curl 'http://127.0.0.1:8080/rs/DE-CIX?q=show+ip+bgp+summary'
//	curl 'http://127.0.0.1:8080/rs/DE-CIX?q=show+ip+bgp+20.1.4.0/24'
//
// In both modes SIGINT/SIGTERM shut the server down gracefully:
// in-flight requests get up to -drain to finish before the listener
// closes.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"mlpeering/internal/churn"
	"mlpeering/internal/pipeline"
	"mlpeering/internal/serve"
	"mlpeering/internal/topology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lgserve: ")

	scale := flag.Float64("scale", 0.2, "world scale")
	seed := flag.Int64("seed", 20130501, "generation seed")
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	static := flag.Bool("static", false, "serve the frozen-world looking glasses instead of the gateway")
	churnEpochs := flag.Int("churn-epochs", 12, "churn epochs per replay cycle (gateway mode)")
	churnInterval := flag.Duration("churn-interval", time.Minute, "simulated trace time per epoch (gateway mode)")
	epochInterval := flag.Duration("epoch-interval", 200*time.Millisecond, "minimum wall-clock pacing between snapshot commits (gateway mode)")
	maxInFlight := flag.Int("max-inflight", 256, "in-flight request cap before 429 (gateway mode, 0 = unbounded)")
	maxAge := flag.Duration("max-age", 0, "Cache-Control max-age (0 = no-cache, always revalidate)")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown drain timeout")
	workers := flag.Int("workers", 0, "window-close worker pool size (0 = GOMAXPROCS)")
	flag.Parse()

	cfg := topology.DefaultConfig()
	cfg.Scale = *scale
	cfg.Seed = *seed

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}

	if *static {
		runStatic(ctx, ln, cfg, *drain)
		return
	}

	ccfg := churn.DefaultConfig(*seed)
	ccfg.Epochs = *churnEpochs
	ccfg.Interval = *churnInterval

	g := serve.New(serve.Config{
		Topology:      cfg,
		Churn:         ccfg,
		Workers:       *workers,
		MaxInFlight:   *maxInFlight,
		MaxAge:        *maxAge,
		EpochInterval: *epochInterval,
		Logf:          log.Printf,
	})
	runErr := make(chan error, 1)
	go func() { runErr <- g.Run(ctx) }()

	log.Printf("gateway on http://%s (endpoints: /v1/epoch /v1/stats /v1/mesh /v1/ixps /v1/ixp/<name> /v1/link?a=&b= /v1/as/<asn> /healthz)", ln.Addr())
	srv := &http.Server{Handler: g.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		log.Fatal(err)
	case err := <-runErr:
		if err != nil {
			log.Fatal(err)
		}
	case <-ctx.Done():
	}

	log.Printf("shutting down (drain %v)", *drain)
	if err := serve.WaitShutdown(ctx, srv, *drain); err != nil {
		log.Fatalf("shutdown: %v", err)
	}
	log.Printf("bye")
}

// runStatic preserves the original mode: build one world and serve its
// looking glasses, now with the same graceful SIGINT/SIGTERM drain as
// the gateway.
func runStatic(ctx context.Context, ln net.Listener, cfg topology.Config, drain time.Duration) {
	start := time.Now()
	w, err := pipeline.BuildWorld(cfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("world built in %v", time.Since(start).Round(time.Millisecond))

	for _, info := range w.Topo.IXPs {
		if info.HasLG {
			fmt.Printf("route server LG: http://%s/rs/%s?q=show+ip+bgp+summary\n", ln.Addr(), info.Name)
		}
	}
	// Print one example member LG; pick it by sorted IXP name so the
	// banner is stable run to run.
	names := make([]string, 0, len(w.Topo.MemberLGs))
	for name := range w.Topo.MemberLGs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if lgs := w.Topo.MemberLGs[name]; len(lgs) > 0 {
			fmt.Printf("member LG:       http://%s/as/%s?q=show+ip+bgp+<prefix>\n", ln.Addr(), lgs[0].ASN)
			break
		}
	}
	log.Printf("serving on %s (static mode)", ln.Addr())
	srv := &http.Server{Handler: w.LGHandler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Printf("shutting down (drain %v)", drain)
	if err := serve.WaitShutdown(ctx, srv, drain); err != nil {
		log.Fatalf("shutdown: %v", err)
	}
	log.Printf("bye")
}
