// Command mlpinfer runs the full multilateral-peering inference pipeline
// over a generated world (passive MRT mining, the active looking-glass
// survey over HTTP, reciprocity-based link inference) and prints the
// per-IXP results plus the inferred links.
//
// Usage:
//
//	mlpinfer [-scale 0.3] [-seed 20130501] [-links] [-validate]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"mlpeering/internal/core"
	"mlpeering/internal/pipeline"
	"mlpeering/internal/topology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mlpinfer: ")

	scale := flag.Float64("scale", 0.3, "world scale (1.0 = paper scale)")
	seed := flag.Int64("seed", 20130501, "generation seed")
	printLinks := flag.Bool("links", false, "print every inferred link")
	validate := flag.Bool("validate", false, "run LG validation (§5.1)")
	flag.Parse()

	cfg := topology.DefaultConfig()
	cfg.Scale = *scale
	cfg.Seed = *seed

	start := time.Now()
	w, err := pipeline.BuildWorld(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer w.Close()
	log.Printf("world built in %v", time.Since(start).Round(time.Millisecond))

	start = time.Now()
	run, err := w.RunInference(context.Background(), core.DefaultActiveConfig())
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("inference completed in %v", time.Since(start).Round(time.Millisecond))

	d := run.Passive.Dropped
	fmt.Printf("passive: %d paths kept, dropped %d bogon / %d cycle / %d transient\n",
		run.Passive.Paths.Len(), d.Bogon, d.Cycle, d.Transient)
	fmt.Printf("active:  %d LG queries across %d IXPs\n\n",
		run.Active.TotalQueries(), len(run.Active.QueriesPerIXP))

	fmt.Printf("%-10s %8s %8s %8s %8s\n", "IXP", "RS", "Pasv", "Active", "Links")
	for _, prof := range topology.PaperIXPProfiles() {
		x := run.Result.PerIXP[prof.Name]
		if x == nil {
			continue
		}
		fmt.Printf("%-10s %8d %8d %8d %8d\n",
			prof.Name, len(x.Members), x.PassiveCount(), x.ActiveCount(), len(x.Links))
	}
	fmt.Printf("\ntotal: %d distinct links (%d at more than one IXP)\n",
		run.Result.TotalLinks(), run.Result.MultiIXPLinks())

	invisible := 0
	for link := range run.Result.Links {
		if !run.Passive.Links[link] {
			invisible++
		}
	}
	fmt.Printf("invisible in public BGP: %d (%.1f%%)\n",
		invisible, 100*float64(invisible)/float64(run.Result.TotalLinks()))

	if *validate {
		v := w.Validator(run, 0)
		res, err := v.Validate(context.Background(), run.Result)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("validation: tested %d links, confirmed %d (%.1f%%)\n",
			res.Tested, res.Confirmed, 100*res.ConfirmedFraction())
	}

	if *printLinks {
		type row struct{ a, b uint32 }
		var rows []row
		for link := range run.Result.Links {
			rows = append(rows, row{uint32(link.A), uint32(link.B)})
		}
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].a != rows[j].a {
				return rows[i].a < rows[j].a
			}
			return rows[i].b < rows[j].b
		})
		for _, r := range rows {
			fmt.Fprintf(os.Stdout, "link AS%d AS%d\n", r.a, r.b)
		}
	}
}
